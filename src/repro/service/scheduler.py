"""The daemon core: job state machine driving the fleet.

Single-threaded by design: the scheduler loop owns every job record
and the fleet, and the HTTP threads talk to it exclusively through a
command queue (:meth:`Scheduler.submit` / :meth:`cancel` /
:meth:`drain` block on a reply event).  Status reads never enter the
loop at all — records are persisted atomically on every change, so
API threads read them straight from disk.

Crash model: the loop persists a job's record *before* acting on the
new state (dispatch after save), so a daemon killed between any two
instructions recovers by re-deriving work from the records — a shard
marked ``running`` with no live worker simply requeues, its journal
splicing whatever the dead attempt completed.  Nothing the scheduler
loses is a result; results live in journals.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.obs import Telemetry
from repro.obs.live import LiveBus, PromFileSink
from repro.service.fleet import Fleet, FleetSettings
from repro.service.jobstore import ShardRecord
from repro.service.reaper import Reaper
from repro.service.shard import plan_shards
from repro.service.spec import JobSpec, SpecError

#: Attempt budgets for the non-shard task kinds (shards have their own
#: reclaim budget on the reaper).
PROBE_RETRIES = 1
MERGE_RETRIES = 1


class _Command:
    __slots__ = ("name", "payload", "event", "result", "error")

    def __init__(self, name, payload):
        self.name = name
        self.payload = payload
        self.event = threading.Event()
        self.result = None
        self.error = None


class Scheduler:
    """Owns the job table, the fleet, and the daemon's telemetry."""

    def __init__(self, store, settings=None, reaper=None,
                 telemetry=None):
        self.store = store
        self.settings = settings or FleetSettings()
        self.reaper = reaper or Reaper()
        self.fleet = Fleet(self.settings, store.root)
        self.telemetry = (
            telemetry if telemetry is not None
            else self._build_telemetry()
        )
        #: job_id -> (JobSpec, JobRecord); the loop's working set.
        self.jobs = {}
        self._commands = queue.Queue()
        self.draining = False
        self.drained = False
        self._drain_started = None
        self.drain_timeout = 30.0
        self._stop = False

    def _build_telemetry(self):
        telemetry = Telemetry()
        sink = PromFileSink(self.store.prom_path(), telemetry)
        telemetry.bus = LiveBus(
            [sink], run_id="service",
            heartbeat_interval=max(
                0.2, self.settings.heartbeat_interval
            ),
        )
        return telemetry

    # -- startup / recovery ---------------------------------------------

    def start(self):
        """Load every unfinished job from disk and start the fleet.

        Recovery is re-derivation, not replay: shards the dead daemon
        left ``running`` requeue immediately (their journals carry the
        progress), a job probed but unplanned re-probes, and a job
        whose shards all settled goes straight to merge.
        """
        for job_id in self.store.list_jobs():
            record = self.store.load(job_id)
            if record.finished:
                continue
            spec = self.store.load_spec(job_id)
            recovered = 0
            for shard in record.shards:
                if shard.status == "running":
                    shard.status = "pending"
                    shard.eligible_at = 0.0
                    recovered += 1
            if recovered:
                self.store.save(record)
            self.jobs[job_id] = (spec, record)
        self.fleet.start()
        # run_started opens the bus's heartbeat ticker, which drives
        # the Prometheus textfile rewrites from here on.
        self.telemetry.emit(
            "run_started", workload="service",
            jobs=self.settings.workers, executor="fleet",
        )
        self._update_gauges()

    # -- thread-safe command API (HTTP threads) --------------------------

    def _command(self, name, payload, timeout=30.0):
        command = _Command(name, payload)
        self._commands.put(command)
        if not command.event.wait(timeout):
            raise TimeoutError(f"scheduler did not answer {name!r}")
        if command.error is not None:
            raise command.error
        return command.result

    def submit(self, spec_dict):
        """Validate + persist a new job; returns its job_id."""
        return self._command("submit", spec_dict)

    def cancel(self, job_id):
        return self._command("cancel", job_id)

    def drain(self):
        """Start a graceful drain; returns immediately."""
        return self._command("drain", None)

    # -- the loop --------------------------------------------------------

    def run_forever(self, poll=0.2):
        while not self._stop:
            self.step(poll)
            if self.drained:
                break

    def stop(self):
        self._stop = True

    def step(self, poll=0.2):
        """One scheduler iteration; the unit the tests drive."""
        self._process_commands()
        if self.draining:
            self._step_drain()
        else:
            self._dispatch_ready()
        for worker, task, reply in self.fleet.poll(timeout=poll):
            self._complete(worker, task, reply)
        if not self.draining:
            self._reap()
            self.fleet.ensure_complement()
        self._update_gauges()

    # -- commands --------------------------------------------------------

    def _process_commands(self):
        while True:
            try:
                command = self._commands.get_nowait()
            except queue.Empty:
                return
            try:
                command.result = self._apply(command)
            except Exception as exc:
                command.error = exc
            finally:
                command.event.set()

    def _apply(self, command):
        if command.name == "submit":
            if self.draining:
                raise SpecError("daemon is draining; not accepting jobs")
            spec = JobSpec.from_dict(command.payload)
            record = self.store.create(spec)
            self.jobs[record.job_id] = (spec, record)
            self.telemetry.emit(
                "job_submitted", job=record.job_id,
                workload=spec.workload, shards=spec.shards,
            )
            return record.job_id
        if command.name == "cancel":
            return self._cancel(command.payload)
        if command.name == "drain":
            if not self.draining:
                self.draining = True
                self._drain_started = time.monotonic()
                self.telemetry.emit(
                    "drain_started",
                    busy=len(self.fleet.busy_workers()),
                )
            return True
        raise ValueError(f"unknown command {command.name!r}")

    def _cancel(self, job_id):
        entry = self.jobs.get(job_id)
        if entry is None:
            record = self.store.load(job_id)  # raises if unknown
            return record.state
        _spec, record = entry
        if record.finished:
            return record.state
        for worker in list(self.fleet.busy_workers()):
            if worker.task and worker.task["job_id"] == job_id:
                self.fleet.kill_worker(worker)
        for shard in record.shards:
            if shard.status == "running":
                shard.status = "pending"
        record.advance("CANCELLED", "cancelled by request")
        self.store.save(record)
        self._emit_job_state(record)
        return record.state

    # -- dispatch --------------------------------------------------------

    def _active_jobs(self):
        return [
            (spec, record) for spec, record in self.jobs.values()
            if not record.finished
        ]

    def _dispatch_ready(self):
        now = time.time()
        for spec, record in self._active_jobs():
            if record.state == "PENDING":
                record.advance("RUNNING")
                self.store.save(record)
                self._emit_job_state(record)
            if record.planned_points is None:
                self._dispatch_probe(spec, record)
                continue
            if record.planned_points and not record.shards_settled():
                self._dispatch_shards(spec, record, now)
                continue
            if not record.merged:
                self._dispatch_merge(spec, record)

    def _task_base(self, kind, spec, record, **extra):
        task = {
            "kind": kind, "job_id": record.job_id,
            "spec": spec.to_dict(), "dispatched_at": time.time(),
        }
        task.update(extra)
        return task

    def _dispatch_probe(self, spec, record):
        if self.fleet.worker_for("probe", record.job_id) is not None:
            return
        self.fleet.dispatch(self._task_base("probe", spec, record))

    def _dispatch_shards(self, spec, record, now):
        for shard in record.shards:
            if shard.status != "pending" or shard.eligible_at > now:
                continue
            task = self._task_base(
                "shard", spec, record,
                shard_id=shard.shard_id, lo=shard.lo, hi=shard.hi,
                jitter_salt=shard.shard_id + 1,
            )
            if not self.fleet.dispatch(task):
                return  # fleet is full; try next step
            shard.status = "running"
            shard.attempts += 1
            self.store.save(record)
            self.telemetry.emit(
                "shard_dispatched", job=record.job_id,
                shard=shard.shard_id, lo=shard.lo, hi=shard.hi,
                attempt=shard.attempts,
            )

    def _dispatch_merge(self, spec, record):
        if self.fleet.worker_for("merge", record.job_id) is not None:
            return
        self.fleet.dispatch(self._task_base(
            "merge", spec, record, shards=record.shards,
        ))

    # -- completions -----------------------------------------------------

    def _complete(self, worker, task, reply):
        job_id = task["job_id"]
        entry = self.jobs.get(job_id)
        if entry is None:
            return
        spec, record = entry
        if record.finished:
            return  # cancelled while in flight; result is moot
        kind = task["kind"]
        if reply[0] == "done":
            self._complete_done(spec, record, kind, task, reply[2])
        elif reply[0] == "failed":
            self._complete_failed(record, kind, task, reply[2])
        else:  # ("died", exitcode)
            self._complete_died(record, kind, task, reply[1])
        self.store.save(record)

    def _complete_done(self, spec, record, kind, task, result):
        if kind == "probe":
            fids = result["fids"]
            record.planned_points = len(fids)
            record.shards = [
                ShardRecord(
                    shard_id=index, lo=lo, hi=hi, points=points,
                )
                for index, (lo, hi, points)
                in enumerate(plan_shards(fids, spec.shards))
            ]
            return
        if kind == "shard":
            shard = record.shard(task["shard_id"])
            shard.status = "done"
            shard.summary = result
            self.telemetry.emit(
                "shard_completed", job=record.job_id,
                shard=shard.shard_id,
                journaled=result.get("journaled"),
                bugs=result.get("bugs"),
            )
            return
        # merge
        record.merged = True
        if result.get("degraded"):
            record.finalize_degraded(
                f"merge lost points: {result.get('incidents')} "
                f"incident(s)"
            )
        else:
            record.advance("DONE")
        self._emit_job_state(record, summary=result)

    def _complete_failed(self, record, kind, task, detail):
        if kind == "probe":
            record.probe_attempts += 1
            if record.probe_attempts > PROBE_RETRIES:
                record.advance("FAILED", f"probe failed: {detail}")
                self._emit_job_state(record)
            return
        if kind == "shard":
            self._retire_shard_attempt(
                record, task["shard_id"], f"task failed: {detail}"
            )
            return
        record.merge_attempts += 1
        if record.merge_attempts > MERGE_RETRIES:
            record.advance("FAILED", f"merge failed: {detail}")
            self._emit_job_state(record)

    def _complete_died(self, record, kind, task, exitcode):
        detail = f"fleet worker died (exitcode {exitcode})"
        if kind == "shard":
            self._retire_shard_attempt(
                record, task["shard_id"], detail
            )
        else:
            self._complete_failed(record, kind, task, detail)

    def _retire_shard_attempt(self, record, shard_id, detail):
        """One shard attempt is gone (death, failure, or reclaim):
        requeue with backoff or abandon, degrading the job."""
        shard = record.shard(shard_id)
        verdict = self.reaper.reclaim(shard)
        self.telemetry.metrics.inc("service.shard_retries")
        self.telemetry.emit(
            "shard_reclaimed", job=record.job_id, shard=shard_id,
            verdict=verdict, attempts=shard.attempts, detail=detail,
        )
        if verdict == "abandoned" and record.state == "RUNNING":
            record.advance(
                "DEGRADED",
                f"shard {shard_id} abandoned after "
                f"{shard.reclaims} reclaim(s): {detail}",
            )
            self._emit_job_state(record)

    # -- reaping ---------------------------------------------------------

    def _reap(self):
        for worker in list(self.fleet.busy_workers()):
            task = worker.task
            if task is None or task["kind"] != "shard":
                continue
            entry = self.jobs.get(task["job_id"])
            if entry is None:
                continue
            _spec, record = entry
            heartbeat = self.store.heartbeat_path(
                task["job_id"], task["shard_id"]
            )
            if not self.reaper.is_stale(
                heartbeat, task["dispatched_at"]
            ):
                continue
            self.fleet.kill_worker(worker)
            self.telemetry.metrics.inc("service.shard_reclaims")
            self._retire_shard_attempt(
                record, task["shard_id"], "stale heartbeat"
            )
            self.store.save(record)

    # -- drain -----------------------------------------------------------

    def _step_drain(self):
        busy = self.fleet.busy_workers()
        elapsed = time.monotonic() - self._drain_started
        if busy and elapsed < self.drain_timeout:
            return
        if busy:
            # Timed out: kill what remains — their journals carry the
            # progress, so the only cost is a resumed re-dispatch.
            for worker in list(busy):
                task = worker.task
                self.fleet.kill_worker(worker)
                if task and task["kind"] == "shard":
                    entry = self.jobs.get(task["job_id"])
                    if entry:
                        shard = entry[1].shard(task["shard_id"])
                        shard.status = "pending"
                        shard.eligible_at = 0.0
                        self.store.save(entry[1])
        # Requeue every still-running shard record (in-flight batches
        # finished above; nothing is mid-run anymore).
        for _spec, record in self._active_jobs():
            changed = False
            for shard in record.shards:
                if shard.status == "running":
                    shard.status = "pending"
                    shard.eligible_at = 0.0
                    changed = True
            if changed:
                self.store.save(record)
        seconds = time.monotonic() - self._drain_started
        self.telemetry.metrics.set_gauge(
            "service.drain_seconds", seconds
        )
        self.telemetry.emit(
            "drain_finished", seconds=seconds,
            jobs_pending=len(self._active_jobs()),
        )
        self.drained = True

    # -- telemetry -------------------------------------------------------

    def _emit_job_state(self, record, **extra):
        self.telemetry.emit(
            "job_state", job=record.job_id, state=record.state,
            finished=record.finished, detail=record.detail, **extra,
        )

    def _update_gauges(self):
        metrics = self.telemetry.metrics
        metrics.set_gauge(
            "service.jobs_active", len(self._active_jobs())
        )
        metrics.set_gauge(
            "service.shards_inflight",
            sum(1 for worker in self.fleet.busy_workers()
                if worker.task and worker.task["kind"] == "shard"),
        )
        metrics.set_gauge(
            "service.fleet_workers", len(self.fleet._workers)
        )

    # -- shutdown --------------------------------------------------------

    def close(self):
        self.fleet.stop()
        # The final Prometheus rewrite (PromFileSink.close) publishes
        # the drain gauges even though the ticker is gone.
        self.telemetry.emit(
            "run_finished", workload="service", findings=0, stats={},
        )
        self.telemetry.close()
