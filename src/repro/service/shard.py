"""Shard execution: what one fleet worker runs for one task.

Three task bodies, all built on the one-shot pipeline rather than
beside it:

* :func:`run_probe` — run the cheap deterministic pre-failure stage
  with an empty shard window to learn the job's planned failure
  points; :func:`plan_shards` then cuts them into contiguous ranges
  with :func:`~repro.exec.base.plan_batches`.
* :func:`run_shard` — one full detection run restricted to
  ``lo <= fid < hi`` via ``failure_point_window``, journaling into the
  shard's own :class:`~repro.resilience.RunJournal` (resuming it if a
  previous attempt died mid-range) and heartbeating through a
  :class:`HeartbeatSink`.
* :func:`run_merge` — concatenate every shard journal into
  ``merged.journal`` (:func:`merge_shard_journals`; legal because the
  shard window is excluded from the journal checksum) and run the job
  once more over the *whole* plan resuming from it: journaled points
  splice in, points lost to abandoned shards execute live, and the
  resulting report is byte-identical to the one-shot CLI.

Every task body reuses the worker's persistent
:class:`~repro.exec.pool.WarmProcessExecutor` when one is passed in —
this is where warm pools finally amortize *across* runs.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.detector import XFDetector, _deterministic_stats
from repro.core.frontend import Frontend
from repro.errors import JournalError
from repro.exec.base import plan_batches
from repro.obs import Telemetry
from repro.obs.live import LiveBus, EventStreamSink
from repro.resilience.journal import (
    JOURNAL_VERSION,
    read_journal_records,
)

#: Heartbeat-file update triggers: cadence from heartbeats, liveness
#: from real progress too (a busy shard beats on completions even if
#: its ticker thread is starved).
_BEAT_KINDS = frozenset({
    "run_started", "heartbeat", "phase_started", "phase_finished",
    "point_completed", "run_finished",
})


class HeartbeatSink:
    """Atomically rewrites a tiny JSON heartbeat file.

    The reaper (daemon side) only reads the file's mtime plus the
    progress counters for diagnostics — so the write is tmp+replace
    (readers never see a torn file) but deliberately *not* fsync'd:
    heartbeats are liveness, not durability.
    """

    def __init__(self, path):
        self.path = path
        self.beats = 0

    def handle(self, event):
        if event.kind not in _BEAT_KINDS:
            return
        payload = {
            "ts": event.ts,
            "kind": event.kind,
            "pid": os.getpid(),
            "data": {
                key: value for key, value in event.data.items()
                if isinstance(value, (int, float, str, bool))
            },
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)
        self.beats += 1


def _shard_telemetry(run_id, events_path, heartbeat_path,
                     heartbeat_interval=1.0):
    """A run-scoped Telemetry whose bus streams into the job's event
    file and (optionally) a shard heartbeat file."""
    sinks = []
    if events_path:
        sinks.append(EventStreamSink(events_path))
    if heartbeat_path:
        sinks.append(HeartbeatSink(heartbeat_path))
    bus = LiveBus(
        sinks, run_id=run_id, heartbeat_interval=heartbeat_interval,
    )
    return Telemetry(bus=bus)


# ----------------------------------------------------------------------
# Probe + shard planning
# ----------------------------------------------------------------------


def run_probe(spec, run_id="probe", events_path=None):
    """The job's planned failure points, via a post-stage-free run.

    An empty window (``(0, 0)``) keeps the pre-failure stage — trace,
    injection, crash plans — intact while planning zero post keys, so
    the probe costs one pre-failure execution and no journal.
    """
    telemetry = _shard_telemetry(run_id, events_path, None)
    config = spec.detector_config(failure_point_window=(0, 0),
                                  telemetry=telemetry)
    try:
        telemetry.emit("run_started", workload=spec.workload,
                       jobs=1, executor="probe")
        result = Frontend(config, telemetry=telemetry).run(
            spec.build_workload()
        )
        fids = sorted(
            fp.fid for fp in result.failure_points
            if getattr(fp, "planned", True)
        )
        telemetry.emit("run_finished", workload=spec.workload,
                       findings=0, stats={"planned_points": len(fids)})
        return fids
    finally:
        telemetry.close()


def plan_shards(fids, shards):
    """Cut the planned fids into ``<= shards`` contiguous ``(lo, hi,
    points)`` ranges using the executor's own batcher, so shard
    boundaries follow the same contiguity discipline as batch
    dispatch."""
    fids = sorted(fids)
    if not fids:
        return []
    shards = max(1, min(int(shards), len(fids)))
    per_shard = -(-len(fids) // shards)  # ceil
    keys = [(fid, None, None) for fid in fids]
    ranges = []
    for batch in plan_batches(keys, per_shard):
        lo, hi = batch[0][0], batch[-1][0] + 1
        ranges.append((lo, hi, len(batch)))
    return ranges


# ----------------------------------------------------------------------
# One shard's detection run
# ----------------------------------------------------------------------


def _quarantine_corrupt(path):
    """Move an unreadable journal aside so the retry starts fresh."""
    corrupt = f"{path}.corrupt"
    try:
        os.replace(path, corrupt)
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass
    return corrupt


def run_shard(spec, lo, hi, journal_path, *, run_id, events_path=None,
              heartbeat_path=None, executor=None, jitter_salt=0,
              heartbeat_interval=1.0):
    """Run the job restricted to ``[lo, hi)``, journaling as it goes.

    A pre-existing shard journal (a reclaimed attempt's progress) is
    resumed; one that refuses to load is quarantined to ``.corrupt``
    and the shard reruns from scratch — progress is lost, results are
    not.  Returns a summary dict for the shard record.
    """
    resume = journal_path if os.path.exists(journal_path) else None
    for attempt in (1, 2):
        telemetry = _shard_telemetry(
            run_id, events_path, heartbeat_path, heartbeat_interval
        )
        config = spec.detector_config(
            failure_point_window=(lo, hi),
            journal=journal_path,
            resume=resume,
            retry_jitter_salt=jitter_salt,
            telemetry=telemetry,
        )
        started = time.monotonic()
        try:
            telemetry.emit(
                "run_started", workload=spec.workload,
                jobs=getattr(executor, "jobs", 1),
                executor=getattr(executor, "kind", "serial"),
                window=[lo, hi],
            )
            result = Frontend(
                config, telemetry=telemetry, executor=executor
            ).run(spec.build_workload())
            report = XFDetector(config).analyze(
                result, executor=executor
            )
            telemetry.emit(
                "run_finished", workload=spec.workload,
                findings=len(report.bugs),
                stats=_deterministic_stats(report.stats),
            )
            _header, posts = read_journal_records(journal_path)
            return {
                "lo": lo, "hi": hi,
                "journaled": len(posts),
                "bugs": len(report.bugs),
                "degraded": report.degraded,
                "incidents": len(report.incidents),
                "seconds": time.monotonic() - started,
            }
        except JournalError:
            if attempt == 2 or resume is None:
                raise
            # The previous attempt's journal would not load (torn
            # beyond the tolerated tail, or a stale checksum from an
            # older revision): quarantine it and rerun clean.
            _quarantine_corrupt(journal_path)
            resume = None
        finally:
            if executor is not None:
                end_run = getattr(executor, "end_run", None)
                if end_run is not None:
                    end_run()
            telemetry.close()


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------


def merge_shard_journals(shard_paths, merged_path):
    """Concatenate shard journals into one resumable merged journal.

    All readable journals must agree on the checksum (they will: the
    shard window is excluded from it).  Posts from a pre-existing
    merged journal are kept — a merge run that died mid-way left its
    own progress there.  Unreadable journals are skipped (their ranges
    simply re-execute); a missing file means the shard never began.
    Returns ``(post_count, skipped_paths)``.
    """
    header = None
    posts = {}
    skipped = []
    sources = list(shard_paths)
    if os.path.exists(merged_path):
        sources.append(merged_path)
    for path in sources:
        if not os.path.exists(path):
            continue
        try:
            file_header, file_posts = read_journal_records(path)
        except JournalError:
            skipped.append(path)
            continue
        if header is None:
            header = file_header
        elif file_header.get("checksum") != header.get("checksum"):
            # A journal from a different run revision: its entries
            # would be refused at resume time anyway.
            skipped.append(path)
            continue
        posts.update(file_posts)
    if header is None:
        return 0, skipped
    tmp = f"{merged_path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(json.dumps({
            "type": "header", "version": JOURNAL_VERSION,
            "checksum": header["checksum"],
            "workload": header.get("workload"),
        }) + "\n")
        ordered = sorted(
            posts,
            key=lambda key: (key[0], -1 if key[1] is None else key[1]),
        )
        for key in ordered:
            handle.write(json.dumps(posts[key], default=str) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, merged_path)
    return len(posts), skipped


def run_merge(spec, shard_journals, merged_path, report_text_path,
              report_json_path, *, run_id, events_path=None,
              executor=None, heartbeat_path=None,
              heartbeat_interval=1.0):
    """Produce the job's final report from the merged journals.

    The merge run covers the *whole* plan with no window: every
    journaled point splices in without executing, every point an
    abandoned shard never finished executes live, and the report —
    built in plan order exactly like a one-shot run — is byte-identical
    to the serial CLI.  Returns the summary for the job record.
    """
    journaled, skipped = merge_shard_journals(
        shard_journals, merged_path
    )
    telemetry = _shard_telemetry(
        run_id, events_path, heartbeat_path, heartbeat_interval
    )
    resume = merged_path if journaled else None
    config = spec.detector_config(
        journal=merged_path,
        resume=resume,
        telemetry=telemetry,
    )
    started = time.monotonic()
    try:
        telemetry.emit(
            "run_started", workload=spec.workload,
            jobs=getattr(executor, "jobs", 1),
            executor=getattr(executor, "kind", "serial"),
        )
        result = Frontend(
            config, telemetry=telemetry, executor=executor
        ).run(spec.build_workload())
        report = XFDetector(config).analyze(result, executor=executor)
        telemetry.emit(
            "run_finished", workload=spec.workload,
            findings=len(report.bugs),
            stats=_deterministic_stats(report.stats),
        )
        text = report.format(unique=True)
        with open(f"{report_text_path}.tmp", "w") as handle:
            handle.write(text)
            if not text.endswith("\n"):
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(f"{report_text_path}.tmp", report_text_path)
        with open(f"{report_json_path}.tmp", "w") as handle:
            handle.write(report.to_json(unique=True))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(f"{report_json_path}.tmp", report_json_path)
        return {
            "journaled": journaled,
            "skipped_journals": skipped,
            "bugs": len(report.bugs),
            "unique_bugs": len(report.unique_bugs()),
            "degraded": report.degraded,
            "incidents": len(report.incidents),
            "failure_points": report.stats.failure_points,
            "seconds": time.monotonic() - started,
        }
    finally:
        if executor is not None:
            end_run = getattr(executor, "end_run", None)
            if end_run is not None:
                end_run()
        telemetry.close()
