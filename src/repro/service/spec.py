"""The JSON job schema: what a client submits, validated once.

A :class:`JobSpec` is the *whole* detection request — workload,
sizing, faults, detection knobs, and the job's sharding shape.  It is
deliberately a plain dataclass over JSON-native types so it survives
``to_dict``/``from_dict`` round trips bit-for-bit: the daemon persists
it verbatim in ``spec.json`` and every shard (and the byte-identity
reference run in the tests) rebuilds its config from the same dict.

Determinism contract: :meth:`detector_config` must yield configs whose
journal checksum (:func:`repro.resilience.run_checksum`) is identical
for every shard of one job — only scheduling fields
(``failure_point_window``, jobs, journal paths, telemetry) may differ
between the shards, the merge run, and the one-shot reference.
"""

from __future__ import annotations

import dataclasses
import re

from repro.core.config import DetectorConfig
from repro.pm.image import CrashImageMode
from repro.workloads import ALL_WORKLOADS

SPEC_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class SpecError(ValueError):
    """A submitted job spec failed validation."""


@dataclasses.dataclass
class JobSpec:
    """One detection job as submitted over the API."""

    workload: str
    faults: list = dataclasses.field(default_factory=list)
    init_size: int = 0
    test_size: int = 4
    #: Detection knobs (checksum-relevant: identical on every shard).
    crash_state_variants: int = 0
    static_prune: bool = False
    plan_mode: str | None = None
    max_failure_points: int | None = None
    strict_image: bool = False
    report_perf_bugs: bool = True
    #: Sharding shape: how many contiguous fid ranges the plan splits
    #: into.  1 = no fan-out (still journaled + resumable).
    shards: int = 2
    #: Resilience knobs forwarded to every shard run.
    exec_deadline: float | None = None
    max_retries: int | None = None
    chaos: str | None = None
    #: Free-form tag echoed in status output (e.g. a CI build id).
    label: str | None = None

    def __post_init__(self):
        if self.workload not in ALL_WORKLOADS:
            raise SpecError(
                f"unknown workload {self.workload!r} (have: "
                f"{', '.join(sorted(ALL_WORKLOADS))})"
            )
        if self.label is not None and not _NAME_RE.match(self.label):
            raise SpecError(
                f"label {self.label!r} must match {_NAME_RE.pattern}"
            )
        self.faults = [str(fault) for fault in self.faults]
        self.init_size = int(self.init_size)
        self.test_size = int(self.test_size)
        self.shards = max(1, int(self.shards))
        if self.test_size < 1:
            raise SpecError("test_size must be >= 1")

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise SpecError(f"job spec must be an object, got {data!r}")
        version = data.get("v", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                f"job spec v{version!r} not supported "
                f"(this daemon speaks v{SPEC_VERSION})"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known - {"v"}
        if unknown:
            raise SpecError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}"
            )
        if "workload" not in data:
            raise SpecError("job spec needs a 'workload'")
        try:
            return cls(**{k: v for k, v in data.items() if k != "v"})
        except TypeError as exc:
            raise SpecError(f"bad job spec: {exc}") from exc

    def to_dict(self):
        payload = {"v": SPEC_VERSION}
        payload.update(dataclasses.asdict(self))
        return payload

    # -- build ----------------------------------------------------------

    def build_workload(self):
        return ALL_WORKLOADS[self.workload](
            faults=set(self.faults),
            init_size=self.init_size,
            test_size=self.test_size,
        )

    def detector_config(self, **overrides):
        """A :class:`DetectorConfig` for one run of this job.

        ``overrides`` carry the per-run scheduling fields (shard
        window, journal paths, executor shape, telemetry) — everything
        checksum-relevant comes from the spec itself.
        """
        fields = {
            "crash_image_mode": (
                CrashImageMode.PERSISTED_ONLY if self.strict_image
                else CrashImageMode.AS_WRITTEN
            ),
            "crash_state_variants": self.crash_state_variants,
            "static_prune": self.static_prune,
            "max_failure_points": self.max_failure_points,
            "report_perf_bugs": self.report_perf_bugs,
            # The daemon is headless: no TTY progress line, and chaos
            # only when the spec asks for it (never from the daemon's
            # own environment).
            "progress": False,
            "chaos": self.chaos,
        }
        if self.plan_mode is not None:
            fields["plan_mode"] = self.plan_mode
        if self.exec_deadline is not None:
            fields["exec_deadline"] = self.exec_deadline
        if self.max_retries is not None:
            fields["max_retries"] = max(0, int(self.max_retries))
        fields.update(overrides)
        return DetectorConfig(**fields)
