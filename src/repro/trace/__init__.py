"""Tracing framework — the reproduction's substitute for the Pin frontend.

Every PM operation performed through :class:`repro.pm.PersistentMemory`
produces a :class:`~repro.trace.events.TraceEvent` carrying the operation
kind, the target address range, and the source location of the workload
code that performed it.  Traces are recorded by
:class:`~repro.trace.recorder.TraceRecorder` and replayed by the detector
backend; they can also be serialized to text for offline analysis.
"""

from repro.trace.events import EventKind, TraceEvent
from repro.trace.recorder import TraceRecorder
from repro.trace.serialize import (
    dump_packed,
    format_event,
    format_trace,
    is_packed,
    load_packed,
    load_trace,
    parse_event,
    parse_trace,
)

__all__ = [
    "EventKind",
    "TraceEvent",
    "TraceRecorder",
    "dump_packed",
    "format_event",
    "format_trace",
    "is_packed",
    "load_packed",
    "load_trace",
    "parse_event",
    "parse_trace",
]
