"""Trace event types.

A trace is a sequence of :class:`TraceEvent` records.  The set of kinds
mirrors what the paper's frontend traces: low-level PM operations
(``WRITE``, ``CLWB``, ``SFENCE``...) at instruction granularity, PMDK
library calls (transactions, allocation) at function granularity, plus
the markers produced by the Table 2 annotation interface and by the
failure injector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._location import UNKNOWN_LOCATION, SourceLocation


class EventKind(enum.Enum):
    """What a trace entry describes."""

    # --- instruction-granularity PM operations -----------------------
    STORE = "STORE"  # ordinary store to PM
    NT_STORE = "NT_STORE"  # non-temporal store
    LOAD = "LOAD"  # load from PM
    FLUSH = "FLUSH"  # CLWB / CLFLUSHOPT / CLFLUSH (info = kind)
    FENCE = "FENCE"  # SFENCE / MFENCE / drain (info = kind)

    # --- function-granularity library operations ----------------------
    TX_BEGIN = "TX_BEGIN"  # info = tx id
    TX_ADD = "TX_ADD"  # range added to the undo log; info = tx id
    TX_COMMIT = "TX_COMMIT"  # info = tx id
    TX_ABORT = "TX_ABORT"  # info = tx id
    ALLOC = "ALLOC"  # persistent allocation (info = "zeroed"/"raw")
    FREE = "FREE"
    LIB_BEGIN = "LIB_BEGIN"  # enter library internals (info = name)
    LIB_END = "LIB_END"

    # --- annotation interface markers (Table 2) -----------------------
    ROI_BEGIN = "ROI_BEGIN"
    ROI_END = "ROI_END"
    SKIP_DET_BEGIN = "SKIP_DET_BEGIN"
    SKIP_DET_END = "SKIP_DET_END"
    COMMIT_VAR = "COMMIT_VAR"  # register commit variable (info = name)
    COMMIT_RANGE = "COMMIT_RANGE"  # associate range with var (info = name)

    # --- injector markers ---------------------------------------------
    FAILURE_POINT = "FAILURE_POINT"  # info = failure point id
    HINT_FAILURE_POINT = "HINT_FAILURE_POINT"  # info = reason


#: Kinds that directly touch PM data (used by the "no empty failure
#: point" optimization, paper Section 5.4).
PM_DATA_KINDS = frozenset({
    EventKind.STORE,
    EventKind.NT_STORE,
    EventKind.TX_ADD,
    EventKind.ALLOC,
    EventKind.FREE,
})

#: Dense integer codes for the columnar trace representation and the
#: replayer's flattened dispatch: enum members cost a hash + identity
#: chain per comparison, small ints cost one ``==``.  Codes follow
#: declaration order, so they are stable as long as new kinds append.
KIND_CODE = {kind: code for code, kind in enumerate(EventKind)}

#: Inverse mapping; ``KIND_BY_CODE[code]`` is O(1).
KIND_BY_CODE = tuple(EventKind)

#: Integer-coded :data:`PM_DATA_KINDS` for the fast observer path.
PM_DATA_CODES = frozenset(KIND_CODE[kind] for kind in PM_DATA_KINDS)


@dataclass(frozen=True)
class TraceEvent:
    """One entry of a PM operation trace.

    ``addr``/``size`` describe the affected byte range (0/0 for events
    without one, such as fences and markers); ``info`` carries the
    kind-specific payload documented on :class:`EventKind`; ``ip`` is the
    source location of the responsible workload code; ``tid`` is a
    small per-runtime thread index (0 for single-threaded runs) that
    lets the backend scope library regions and transactions per thread
    (paper Section 7).
    """

    seq: int
    kind: EventKind
    addr: int = 0
    size: int = 0
    info: str = ""
    ip: SourceLocation = field(default=UNKNOWN_LOCATION)
    tid: int = 0

    @property
    def end(self):
        return self.addr + self.size

    def touches_pm_data(self):
        return self.kind in PM_DATA_KINDS

    def __str__(self):
        loc = f" @ {self.ip}" if self.ip is not UNKNOWN_LOCATION else ""
        rng = (
            f" [{self.addr:#x},+{self.size}]" if self.size else ""
        )
        info = f" {self.info}" if self.info else ""
        return f"#{self.seq} {self.kind.value}{rng}{info}{loc}"
