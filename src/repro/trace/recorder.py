"""Trace recording.

The recorder is **columnar**: instead of constructing one
:class:`~repro.trace.events.TraceEvent` object per PM operation, it
appends scalars to parallel arrays — kind codes, addresses, sizes,
thread ids, plus indices into interned ``info``-string and call-site
tables.  Appending is a handful of O(1) array pushes; the per-op
object allocation, dataclass ``__init__``, and enum storage of the
row-oriented design are gone from the hot path.

The event API is preserved on top: ``recorder.events`` (readable *and*
assignable), iteration, ``prefix``, ``count``, and ``failure_points``
all materialize :class:`TraceEvent` rows lazily from the columns, and
``append`` still returns the created event for callers that want it.
The backend's compiled replay plans (``repro.core.replay.lower_trace``)
read the columns directly and never materialize events at all.
"""

from __future__ import annotations

from array import array

from repro.trace.events import (
    KIND_BY_CODE,
    KIND_CODE,
    EventKind,
    TraceEvent,
)

_ROI_BEGIN_CODE = KIND_CODE[EventKind.ROI_BEGIN]


class TraceRecorder:
    """Accumulates trace events in order, column-wise.

    Sequence numbers are implicit (an event's seq is its row index);
    the events list may be sliced by the backend to replay the prefix
    of the pre-failure trace leading up to a given failure point.
    """

    def __init__(self, stage="pre"):
        #: "pre" or "post" — which execution stage this trace belongs to.
        self.stage = stage
        #: True once a ROI_BEGIN marker was recorded; the backend reads
        #: this instead of rescanning the whole trace per replayer.
        self.has_roi = False
        self._kinds = array("B")
        self._addrs = array("Q")
        self._sizes = array("Q")
        self._tids = array("H")
        self._info_idx = array("I")
        self._ip_idx = array("I")
        # Interned payload tables: index 0 is the overwhelmingly common
        # default ("" / UNKNOWN_LOCATION), so marker-free operations
        # never grow them.
        from repro._location import UNKNOWN_LOCATION

        self._infos = [""]
        self._info_table = {"": 0}
        self._ips = [UNKNOWN_LOCATION]
        self._ip_table = {id(UNKNOWN_LOCATION): 0}
        self._bind_columns()
        #: Materialized event rows, built lazily and dropped on append.
        self._events = None

    def _bind_columns(self):
        # Pre-bound column append methods: append_op unpacks these
        # instead of doing six attribute lookups per operation.
        self._appends = (
            self._kinds.append, self._addrs.append, self._sizes.append,
            self._tids.append, self._info_idx.append, self._ip_idx.append,
        )
        # One-entry ip cache: consecutive operations overwhelmingly
        # come from the same (interned) call site — a loop reading a
        # structure — so the common case skips the table probe.
        self._last_ip = None
        self._last_ip_index = 0

    # -- columnar hot path ---------------------------------------------

    def append_op(self, kind_code, addr, size, info, ip, tid):
        """Record one operation as bare scalars; returns nothing.

        ``kind_code`` is a :data:`~repro.trace.events.KIND_CODE` int and
        ``ip`` an (interned) SourceLocation or None.  This is the
        runtime's per-PM-op path.
        """
        if kind_code == _ROI_BEGIN_CODE:
            self.has_roi = True
        if not info:
            # Data ops carry no info payload — index 0 by construction.
            info_index = 0
        else:
            info_table = self._info_table
            info_index = info_table.get(info)
            if info_index is None:
                info_index = len(self._infos)
                self._infos.append(info)
                info_table[info] = info_index
        if ip is None:
            ip_index = 0
        elif ip is self._last_ip:
            ip_index = self._last_ip_index
        else:
            ip_table = self._ip_table
            ip_index = ip_table.get(id(ip))
            if ip_index is None:
                ip_index = len(self._ips)
                self._ips.append(ip)
                ip_table[id(ip)] = ip_index
            self._last_ip = ip
            self._last_ip_index = ip_index
        put_kind, put_addr, put_size, put_tid, put_info, put_ip = \
            self._appends
        put_kind(kind_code)
        put_addr(addr)
        put_size(size)
        put_tid(tid)
        put_info(info_index)
        put_ip(ip_index)
        self._events = None

    def columns(self):
        """The raw columns, payload indices resolved.

        Returns ``(kind_codes, addrs, sizes, tids, infos, ips)`` where
        the first four are arrays and the last two are lists of the
        per-row resolved payloads.  This is what trace lowering zips.
        """
        infos = self._infos
        ips = self._ips
        return (
            self._kinds,
            self._addrs,
            self._sizes,
            self._tids,
            [infos[index] for index in self._info_idx],
            [ips[index] for index in self._ip_idx],
        )

    # -- event API ------------------------------------------------------

    def append(self, kind, addr=0, size=0, info="", ip=None, tid=0):
        """Record an event; returns the created :class:`TraceEvent`."""
        from repro._location import UNKNOWN_LOCATION

        self.append_op(KIND_CODE[kind], addr, size, info, ip, tid)
        return TraceEvent(
            seq=len(self._kinds) - 1,
            kind=kind,
            addr=addr,
            size=size,
            info=info,
            ip=ip if ip is not None else UNKNOWN_LOCATION,
            tid=tid,
        )

    def _materialize(self):
        infos = self._infos
        ips = self._ips
        return [
            TraceEvent(
                seq=seq, kind=KIND_BY_CODE[code], addr=addr, size=size,
                info=infos[info_index], ip=ips[ip_index], tid=tid,
            )
            for seq, (code, addr, size, tid, info_index, ip_index)
            in enumerate(zip(
                self._kinds, self._addrs, self._sizes, self._tids,
                self._info_idx, self._ip_idx,
            ))
        ]

    @property
    def events(self):
        """The trace as :class:`TraceEvent` rows (lazily materialized,
        cached until the next append)."""
        events = self._events
        if events is None:
            events = self._materialize()
            self._events = events
        return events

    @events.setter
    def events(self, value):
        """Replace the trace wholesale (offline analysis workflows
        assign parsed event lists)."""
        self._kinds = array("B")
        self._addrs = array("Q")
        self._sizes = array("Q")
        self._tids = array("H")
        self._info_idx = array("I")
        self._ip_idx = array("I")
        from repro._location import UNKNOWN_LOCATION

        self._infos = [""]
        self._info_table = {"": 0}
        self._ips = [UNKNOWN_LOCATION]
        self._ip_table = {id(UNKNOWN_LOCATION): 0}
        self._bind_columns()
        self.has_roi = False
        for event in value:
            ip = event.ip
            self.append_op(
                KIND_CODE[event.kind], event.addr, event.size,
                event.info, None if ip is UNKNOWN_LOCATION else ip,
                event.tid,
            )
        self._events = list(value)

    def __len__(self):
        return len(self._kinds)

    def __iter__(self):
        return iter(self.events)

    def prefix(self, upto):
        """Events with seq < ``upto`` (replay window for one failure
        point)."""
        return self.events[:upto]

    def count(self, kind):
        """Number of recorded events of one kind."""
        code = KIND_CODE[kind]
        return sum(1 for c in self._kinds if c == code)

    def failure_points(self):
        """The FAILURE_POINT markers in recording order."""
        return [
            event for event in self.events
            if event.kind is EventKind.FAILURE_POINT
        ]

    # -- pickling -------------------------------------------------------

    def __getstate__(self):
        # The ip table is keyed by object identity (ids change across
        # processes) and the events cache is re-derivable: ship the
        # columns and the payload lists only.  This is also what keeps
        # worker-outcome pickles small — arrays ship as raw bytes.
        return (
            self.stage, self.has_roi, self._kinds, self._addrs,
            self._sizes, self._tids, self._info_idx, self._ip_idx,
            self._infos, self._ips,
        )

    def __setstate__(self, state):
        (self.stage, self.has_roi, self._kinds, self._addrs,
         self._sizes, self._tids, self._info_idx, self._ip_idx,
         self._infos, self._ips) = state
        self._info_table = {
            info: index for index, info in enumerate(self._infos)
        }
        self._ip_table = {
            id(ip): index for index, ip in enumerate(self._ips)
        }
        self._bind_columns()
        self._events = None


class NullRecorder(TraceRecorder):
    """A recorder that drops events: used to time the "original
    program" baseline (Figure 12b), where the workload runs with no
    tracing cost beyond the runtime itself."""

    def __init__(self, stage="pre"):
        super().__init__(stage)
        self._count = 0

    def append_op(self, kind_code, addr, size, info, ip, tid):
        if kind_code == _ROI_BEGIN_CODE:
            self.has_roi = True
        self._count += 1

    def append(self, kind, addr=0, size=0, info="", ip=None, tid=0):
        from repro._location import UNKNOWN_LOCATION

        self.append_op(KIND_CODE[kind], addr, size, info, ip, tid)
        return TraceEvent(
            seq=self._count - 1, kind=kind, addr=addr, size=size,
            info=info, ip=ip if ip is not None else UNKNOWN_LOCATION,
            tid=tid,
        )

    def __len__(self):
        return self._count
