"""Trace recording."""

from __future__ import annotations

from repro.trace.events import EventKind, TraceEvent


class TraceRecorder:
    """Accumulates trace events in order.

    The recorder is deliberately simple: sequence numbers are assigned
    here, and the events list may be sliced by the backend to replay the
    prefix of the pre-failure trace leading up to a given failure point.
    """

    def __init__(self, stage="pre"):
        #: "pre" or "post" — which execution stage this trace belongs to.
        self.stage = stage
        self.events = []
        #: True once a ROI_BEGIN marker was recorded; the backend reads
        #: this instead of rescanning the whole trace per replayer.
        self.has_roi = False

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def append(self, kind, addr=0, size=0, info="", ip=None, tid=0):
        """Record an event; returns the created :class:`TraceEvent`."""
        from repro._location import UNKNOWN_LOCATION

        event = TraceEvent(
            seq=len(self.events),
            kind=kind,
            addr=addr,
            size=size,
            info=info,
            ip=ip if ip is not None else UNKNOWN_LOCATION,
            tid=tid,
        )
        if kind is EventKind.ROI_BEGIN:
            self.has_roi = True
        self.events.append(event)
        return event

    def prefix(self, upto):
        """Events with seq < ``upto`` (replay window for one failure
        point)."""
        return self.events[:upto]

    def count(self, kind):
        """Number of recorded events of one kind."""
        return sum(1 for event in self.events if event.kind is kind)

    def failure_points(self):
        """The FAILURE_POINT markers in recording order."""
        return [
            event for event in self.events
            if event.kind is EventKind.FAILURE_POINT
        ]


class NullRecorder(TraceRecorder):
    """A recorder that drops events: used to time the "original
    program" baseline (Figure 12b), where the workload runs with no
    tracing cost beyond the runtime itself."""

    def __init__(self, stage="pre"):
        super().__init__(stage)
        self._count = 0

    def append(self, kind, addr=0, size=0, info="", ip=None, tid=0):
        from repro._location import UNKNOWN_LOCATION

        if kind is EventKind.ROI_BEGIN:
            self.has_roi = True
        self._count += 1
        return TraceEvent(
            seq=self._count - 1, kind=kind, addr=addr, size=size,
            info=info, ip=ip if ip is not None else UNKNOWN_LOCATION,
            tid=tid,
        )

    def __len__(self):
        return self._count
