"""Text serialization of traces.

The original tool streams trace entries from the Pin frontend to the
backend through FIFOs; this reproduction keeps traces in memory, but
offers a line-oriented text format so traces can be dumped, diffed, and
re-analysed offline — the "trace-analysis prototype" workflow.

Format (one event per line, space-separated, ``|`` separates the source
location which may itself contain spaces)::

    <seq> <KIND> <addr-hex> <size> <tid> <info-or-dash> | \
        <file>:<line>:<function>
"""

from __future__ import annotations

from repro._location import UNKNOWN_LOCATION, SourceLocation
from repro.trace.events import EventKind, TraceEvent


def format_event(event):
    """Render one event as a trace line."""
    info = event.info if event.info else "-"
    ip = event.ip
    return (
        f"{event.seq} {event.kind.value} {event.addr:#x} {event.size} "
        f"{event.tid} {info} | {ip.filename}:{ip.lineno}:{ip.function}"
    )


def format_trace(events):
    """Render an iterable of events as trace text."""
    return "\n".join(format_event(event) for event in events) + "\n"


def parse_event(line):
    """Parse one trace line back into a :class:`TraceEvent`."""
    head, sep, tail = line.partition(" | ")
    if not sep:
        raise ValueError(f"malformed trace line (no location): {line!r}")
    # Split at most 5 times: the trailing info field may itself contain
    # spaces (commit-variable names, library region labels).
    fields = head.split(None, 5)
    if len(fields) != 6:
        raise ValueError(f"malformed trace line: {line!r}")
    seq_text, kind_text, addr_text, size_text, tid_text, info = fields
    filename, _, rest = tail.partition(":")
    lineno_text, _, function = rest.partition(":")
    ip = SourceLocation(filename, int(lineno_text), function)
    if ip == UNKNOWN_LOCATION:
        ip = UNKNOWN_LOCATION
    return TraceEvent(
        seq=int(seq_text),
        kind=EventKind(kind_text),
        addr=int(addr_text, 16),
        size=int(size_text),
        info="" if info == "-" else info,
        ip=ip,
        tid=int(tid_text),
    )


def parse_trace(text):
    """Parse trace text back into a list of events."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        events.append(parse_event(line))
    return events
