"""Trace serialization: v1 text lines and v2 packed binary.

The original tool streams trace entries from the Pin frontend to the
backend through FIFOs; this reproduction keeps traces in memory, but
offers two on-disk formats so traces can be dumped, diffed, and
re-analysed offline — the "trace-analysis prototype" workflow.

**v1 (text)** — one event per line, space-separated, ``|`` separates
the source location which may itself contain spaces::

    <seq> <KIND> <addr-hex> <size> <tid> <info-or-dash> | \
        <file>:<line>:<function>

**v2 (packed binary)** — the recorder's columnar layout written out
directly: six little-endian scalar columns followed by the interned
info-string and call-site tables.  Dumping is a handful of
``array.tobytes`` calls instead of per-event string formatting, the
interned tables are written once instead of repeating every call site
per line, and loading rebuilds a columnar recorder without
materializing events.  See :func:`dump_packed` for the exact layout.

:func:`load_trace` auto-detects which format it was handed, so readers
written against v1 text keep working unchanged.
"""

from __future__ import annotations

import struct
import sys
from array import array

from repro._location import UNKNOWN_LOCATION, SourceLocation, intern_location
from repro.trace.events import EventKind, TraceEvent


def format_event(event):
    """Render one event as a trace line."""
    info = event.info if event.info else "-"
    ip = event.ip
    return (
        f"{event.seq} {event.kind.value} {event.addr:#x} {event.size} "
        f"{event.tid} {info} | {ip.filename}:{ip.lineno}:{ip.function}"
    )


def format_trace(events):
    """Render an iterable of events as trace text."""
    return "\n".join(format_event(event) for event in events) + "\n"


def parse_event(line):
    """Parse one trace line back into a :class:`TraceEvent`."""
    head, sep, tail = line.partition(" | ")
    if not sep:
        raise ValueError(f"malformed trace line (no location): {line!r}")
    # Split at most 5 times: the trailing info field may itself contain
    # spaces (commit-variable names, library region labels).
    fields = head.split(None, 5)
    if len(fields) != 6:
        raise ValueError(f"malformed trace line: {line!r}")
    seq_text, kind_text, addr_text, size_text, tid_text, info = fields
    filename, _, rest = tail.partition(":")
    lineno_text, _, function = rest.partition(":")
    ip = SourceLocation(filename, int(lineno_text), function)
    if ip == UNKNOWN_LOCATION:
        ip = UNKNOWN_LOCATION
    return TraceEvent(
        seq=int(seq_text),
        kind=EventKind(kind_text),
        addr=int(addr_text, 16),
        size=int(size_text),
        info="" if info == "-" else info,
        ip=ip,
        tid=int(tid_text),
    )


def parse_trace(text):
    """Parse trace text back into a list of events."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        events.append(parse_event(line))
    return events


# ----------------------------------------------------------------------
# v2 packed binary format
# ----------------------------------------------------------------------

#: v2 file magic; the trailing byte is the format version.
PACKED_MAGIC = b"XFDTRC\x00\x02"

_HEADER = struct.Struct("<8sBII")  # magic, has_roi, n_events, reserved
_U32 = struct.Struct("<I")

# Column element types, in file order.  Arrays are written
# little-endian; on big-endian hosts they are byteswapped around
# tobytes/frombytes.
_COLUMN_TYPES = ("B", "Q", "Q", "H", "I", "I")
_SWAP = sys.byteorder == "big"


def _write_str(out, text):
    data = text.encode("utf-8")
    out.append(_U32.pack(len(data)))
    out.append(data)


def _read_str(buf, offset):
    (length,) = _U32.unpack_from(buf, offset)
    offset += 4
    return buf[offset:offset + length].decode("utf-8"), offset + length


def dump_packed(source):
    """Serialize a trace to v2 packed bytes.

    ``source`` is a :class:`~repro.trace.recorder.TraceRecorder` (fast
    path: its columns are written directly) or any iterable of
    :class:`TraceEvent` (a throwaway recorder is filled first).

    Layout, all integers little-endian::

        8s   magic "XFDTRC\\x00\\x02"
        B    has_roi flag
        I    event count n
        I    reserved (zero)
        str  stage ("pre"/"post"; u32 length + utf-8 bytes)
        n*1  kind codes        (u8)
        n*8  addresses         (u64)
        n*8  sizes             (u64)
        n*2  thread ids        (u16)
        n*4  info-table index  (u32)
        n*4  ip-table index    (u32)
        I    info table count, then per entry: str
        I    ip table count, then per entry: str file, I line, str func
    """
    from repro.trace.recorder import TraceRecorder

    recorder = source
    if not isinstance(source, TraceRecorder):
        recorder = TraceRecorder()
        for event in source:
            ip = event.ip
            recorder.append(
                event.kind, event.addr, event.size, event.info,
                None if ip is UNKNOWN_LOCATION else ip, tid=event.tid,
            )
    columns = (
        recorder._kinds, recorder._addrs, recorder._sizes,
        recorder._tids, recorder._info_idx, recorder._ip_idx,
    )
    out = [_HEADER.pack(
        PACKED_MAGIC, 1 if recorder.has_roi else 0, len(recorder), 0
    )]
    _write_str(out, recorder.stage)
    for column in columns:
        if _SWAP and column.itemsize > 1:
            column = array(column.typecode, column)
            column.byteswap()
        out.append(column.tobytes())
    infos = recorder._infos
    out.append(_U32.pack(len(infos)))
    for info in infos:
        _write_str(out, info)
    ips = recorder._ips
    out.append(_U32.pack(len(ips)))
    for ip in ips:
        _write_str(out, ip.filename)
        out.append(_U32.pack(ip.lineno))
        _write_str(out, ip.function)
    return b"".join(out)


def load_packed(data):
    """Parse v2 packed bytes back into a
    :class:`~repro.trace.recorder.TraceRecorder`."""
    from repro.trace.recorder import TraceRecorder

    if not is_packed(data):
        raise ValueError("not a v2 packed trace (bad magic)")
    magic, has_roi, count, _reserved = _HEADER.unpack_from(data, 0)
    offset = _HEADER.size
    stage, offset = _read_str(data, offset)
    columns = []
    for typecode in _COLUMN_TYPES:
        column = array(typecode)
        width = column.itemsize * count
        column.frombytes(data[offset:offset + width])
        if _SWAP and column.itemsize > 1:
            column.byteswap()
        offset += width
        columns.append(column)
    (n_infos,) = _U32.unpack_from(data, offset)
    offset += 4
    infos = []
    for _ in range(n_infos):
        info, offset = _read_str(data, offset)
        infos.append(info)
    (n_ips,) = _U32.unpack_from(data, offset)
    offset += 4
    ips = []
    for _ in range(n_ips):
        filename, offset = _read_str(data, offset)
        (lineno,) = _U32.unpack_from(data, offset)
        offset += 4
        function, offset = _read_str(data, offset)
        ips.append(intern_location(filename, lineno, function))
    recorder = TraceRecorder(stage=stage)
    # Restore through __setstate__: it rebuilds the intern tables and
    # rebinds the column append methods in one place.
    recorder.__setstate__((
        stage, bool(has_roi), columns[0], columns[1], columns[2],
        columns[3], columns[4], columns[5], infos, ips,
    ))
    return recorder


def is_packed(data):
    """True if ``data`` (bytes) begins with the v2 packed magic."""
    return isinstance(data, (bytes, bytearray, memoryview)) \
        and bytes(data[:8]) == PACKED_MAGIC


def load_trace(data):
    """Load a trace from either format, auto-detecting.

    v2 packed bytes are recognised by magic; anything else (str, or
    bytes of v1 text) goes through the line parser.  Returns a list of
    :class:`TraceEvent` either way, so existing v1 readers can be
    pointed at v2 files unchanged.
    """
    if is_packed(data):
        return load_packed(bytes(data)).events
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = bytes(data).decode("utf-8")
    return parse_trace(data)
