"""Trace statistics — the offline analysis side of the toolchain.

Summarizes a recorded trace: operation counts per kind, the PM
footprint actually touched, writeback/fence discipline, and transaction
shape.  Used by the ``xfdetector trace`` subcommand and available as a
library for custom trace analyses (the paper's Section 5.5 decoupling).

The aggregation is built on :class:`repro.obs.metrics.MetricsRegistry`:
``analyze_trace`` fills one registry per trace (counters are hoisted
out of the event loop, so the per-event cost is a couple of attribute
updates) and derives the :class:`TraceStats` view from it.  The
registry rides along as ``stats.registry`` for NDJSON export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._rangemap import RangeMap
from repro.obs.metrics import MetricsRegistry
from repro.trace.events import EventKind


@dataclass
class TraceStats:
    """Aggregate statistics of one trace."""

    events: int = 0
    by_kind: dict = field(default_factory=dict)
    stored_bytes: int = 0
    loaded_bytes: int = 0
    footprint_bytes: int = 0  # distinct PM bytes written
    flushes: int = 0
    fences: int = 0
    ordering_hints: int = 0
    transactions: int = 0
    tx_added_bytes: int = 0
    failure_points: int = 0
    threads: int = 0
    #: The backing MetricsRegistry (``trace.*`` metrics), exportable
    #: via ``registry.to_records()``.
    registry: object | None = field(default=None, repr=False)

    def format(self):
        lines = [
            f"events:           {self.events}",
            f"threads:          {self.threads}",
            f"stored bytes:     {self.stored_bytes}"
            f" (footprint {self.footprint_bytes})",
            f"loaded bytes:     {self.loaded_bytes}",
            f"flushes/fences:   {self.flushes}/{self.fences}",
            f"transactions:     {self.transactions}"
            f" (logged {self.tx_added_bytes} bytes)",
            f"failure points:   {self.failure_points}",
            f"library hints:    {self.ordering_hints}",
            "per kind:",
        ]
        for kind, count in sorted(
            self.by_kind.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {kind:20s} {count}")
        return "\n".join(lines)


def analyze_trace(events, registry=None):
    """Compute :class:`TraceStats` for an event iterable.

    Aggregates into ``registry`` (fresh :class:`MetricsRegistry` when
    None) under ``trace.*`` names; per-kind counts land in
    ``trace.kind.<kind>`` counters.
    """
    if registry is None:
        registry = MetricsRegistry()
    # Hoist the hot counters: one dict lookup each, up front, instead
    # of a registry lookup per event.
    total = registry.counter("trace.events_total")
    stored = registry.counter("trace.stored_bytes")
    loaded = registry.counter("trace.loaded_bytes")
    flushes = registry.counter("trace.flushes")
    fences = registry.counter("trace.fences")
    transactions = registry.counter("trace.transactions")
    tx_added = registry.counter("trace.tx_added_bytes")
    failure_points = registry.counter("trace.failure_points")
    hints = registry.counter("trace.ordering_hints")
    kind_counters = {
        kind: registry.counter(f"trace.kind.{kind.value}")
        for kind in EventKind
    }

    written = RangeMap(False)
    tids = set()
    for event in events:
        total.inc()
        tids.add(event.tid)
        kind_counters[event.kind].inc()
        if event.kind in (EventKind.STORE, EventKind.NT_STORE):
            stored.inc(event.size)
            written.set(event.addr, event.end, True)
        elif event.kind is EventKind.LOAD:
            loaded.inc(event.size)
        elif event.kind is EventKind.FLUSH:
            flushes.inc()
        elif event.kind is EventKind.FENCE:
            fences.inc()
        elif event.kind is EventKind.TX_BEGIN:
            transactions.inc()
        elif event.kind is EventKind.TX_ADD:
            tx_added.inc(event.size)
        elif event.kind is EventKind.FAILURE_POINT:
            failure_points.inc()
        elif event.kind is EventKind.HINT_FAILURE_POINT:
            hints.inc()

    footprint = sum(
        end - start for start, end, _v in written.iter_ranges()
    )
    registry.gauge("trace.footprint_bytes").set(footprint)
    registry.gauge("trace.threads").set(len(tids))

    return TraceStats(
        events=total.value,
        by_kind={
            kind.value: counter.value
            for kind, counter in kind_counters.items()
            if counter.value
        },
        stored_bytes=stored.value,
        loaded_bytes=loaded.value,
        footprint_bytes=footprint,
        flushes=flushes.value,
        fences=fences.value,
        transactions=transactions.value,
        tx_added_bytes=tx_added.value,
        failure_points=failure_points.value,
        ordering_hints=hints.value,
        threads=len(tids),
        registry=registry,
    )
