"""Trace statistics — the offline analysis side of the toolchain.

Summarizes a recorded trace: operation counts per kind, the PM
footprint actually touched, writeback/fence discipline, and transaction
shape.  Used by the ``xfdetector trace`` subcommand and available as a
library for custom trace analyses (the paper's Section 5.5 decoupling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._rangemap import RangeMap
from repro.trace.events import EventKind


@dataclass
class TraceStats:
    """Aggregate statistics of one trace."""

    events: int = 0
    by_kind: dict = field(default_factory=dict)
    stored_bytes: int = 0
    loaded_bytes: int = 0
    footprint_bytes: int = 0  # distinct PM bytes written
    flushes: int = 0
    fences: int = 0
    ordering_hints: int = 0
    transactions: int = 0
    tx_added_bytes: int = 0
    failure_points: int = 0
    threads: int = 0

    def format(self):
        lines = [
            f"events:           {self.events}",
            f"threads:          {self.threads}",
            f"stored bytes:     {self.stored_bytes}"
            f" (footprint {self.footprint_bytes})",
            f"loaded bytes:     {self.loaded_bytes}",
            f"flushes/fences:   {self.flushes}/{self.fences}",
            f"transactions:     {self.transactions}"
            f" (logged {self.tx_added_bytes} bytes)",
            f"failure points:   {self.failure_points}",
            f"library hints:    {self.ordering_hints}",
            "per kind:",
        ]
        for kind, count in sorted(
            self.by_kind.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {kind:20s} {count}")
        return "\n".join(lines)


def analyze_trace(events):
    """Compute :class:`TraceStats` for an event iterable."""
    stats = TraceStats()
    written = RangeMap(False)
    tids = set()
    for event in events:
        stats.events += 1
        tids.add(event.tid)
        name = event.kind.value
        stats.by_kind[name] = stats.by_kind.get(name, 0) + 1
        if event.kind in (EventKind.STORE, EventKind.NT_STORE):
            stats.stored_bytes += event.size
            written.set(event.addr, event.end, True)
        elif event.kind is EventKind.LOAD:
            stats.loaded_bytes += event.size
        elif event.kind is EventKind.FLUSH:
            stats.flushes += 1
        elif event.kind is EventKind.FENCE:
            stats.fences += 1
        elif event.kind is EventKind.TX_BEGIN:
            stats.transactions += 1
        elif event.kind is EventKind.TX_ADD:
            stats.tx_added_bytes += event.size
        elif event.kind is EventKind.FAILURE_POINT:
            stats.failure_points += 1
        elif event.kind is EventKind.HINT_FAILURE_POINT:
            stats.ordering_hints += 1
    stats.footprint_bytes = sum(
        end - start for start, end, _v in written.iter_ranges()
    )
    stats.threads = len(tids)
    return stats
