"""Evaluated PM programs (paper Table 4 plus the Section 2 examples).

Each module implements one persistent data structure or application on
top of :mod:`repro.pmdk`, wrapped in a :class:`~repro.workloads.base.
Workload` that defines its setup / pre-failure / post-failure stages.
Workloads accept a set of *fault* flags that switch on specific
synthetic bugs — the registry in :mod:`repro.bugsuite` maps these to the
paper's Table 5 bug counts.
"""

from repro.workloads.array_backup import ArrayBackupWorkload
from repro.workloads.base import Workload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.ctree import CTreeWorkload
from repro.workloads.hashmap_atomic import HashmapAtomicWorkload
from repro.workloads.hashmap_tx import HashmapTxWorkload
from repro.workloads.linkedlist import LinkedListWorkload
from repro.workloads.pmcache import PMCacheWorkload
from repro.workloads.pmkv import PMKVWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload

#: The five microbenchmarks of Table 4, by paper name.
MICROBENCHMARKS = {
    "btree": BTreeWorkload,
    "ctree": CTreeWorkload,
    "rbtree": RBTreeWorkload,
    "hashmap_tx": HashmapTxWorkload,
    "hashmap_atomic": HashmapAtomicWorkload,
}

#: The two real-world workloads of Table 4 (reduced to their PM cores).
REAL_WORKLOADS = {
    "redis": PMKVWorkload,
    "memcached": PMCacheWorkload,
}

ALL_WORKLOADS = {
    **MICROBENCHMARKS,
    **REAL_WORKLOADS,
    "linkedlist": LinkedListWorkload,
    "array_backup": ArrayBackupWorkload,
    "queue": QueueWorkload,
}

__all__ = [
    "ALL_WORKLOADS",
    "ArrayBackupWorkload",
    "BTreeWorkload",
    "CTreeWorkload",
    "HashmapAtomicWorkload",
    "HashmapTxWorkload",
    "LinkedListWorkload",
    "MICROBENCHMARKS",
    "PMCacheWorkload",
    "PMKVWorkload",
    "QueueWorkload",
    "RBTreeWorkload",
    "REAL_WORKLOADS",
    "Workload",
]
