"""Helpers shared by workload implementations.

``PersistentPtrArray`` provides traced element access to a dynamically
sized array of 8-byte pointers (bucket tables).  ``atomic_list`` wraps
the PMDK atomic-list idiom: an 8-byte pointer swap plus persist executed
as trusted library internals (``POBJ_LIST_INSERT``/``REMOVE``), so no
failure point can land between the store and its persist — the paper's
workloads rely on PMDK's atomic list API being internally crash-safe.
"""

from __future__ import annotations

import struct as _struct

from repro.pmdk import pmem


class PersistentPtrArray:
    """A length-``n`` array of 8-byte PM pointers at a raw address."""

    def __init__(self, memory, base, length):
        self.memory = memory
        self.base = base
        self.length = length

    def _addr(self, index):
        if not 0 <= index < self.length:
            raise IndexError(
                f"pointer array index {index} out of range "
                f"[0, {self.length})"
            )
        return self.base + 8 * index

    def __len__(self):
        return self.length

    def get(self, index):
        raw = self.memory.load(self._addr(index), 8)
        return _struct.unpack("<Q", raw)[0]

    def set(self, index, value):
        self.memory.store(self._addr(index), _struct.pack("<Q", value))

    def addr_of(self, index):
        return self._addr(index)

    def zero_fill(self):
        """Initialize every slot to NULL with one store (so the shadow
        PM sees the table as explicitly initialized)."""
        self.memory.store(self.base, bytes(8 * self.length))

    def persist_all(self, memory=None):
        pmem.persist(memory or self.memory, self.base, 8 * self.length)


def atomic_word_write(memory, address, value, skip_persist=False):
    """The PMDK atomic-update idiom: store one 8-byte word and persist
    it inside a trusted library region, like ``POBJ_LIST_INSERT`` or an
    atomic value overwrite.  No failure point can land between the
    store and its persist, but one is announced before the operation
    (a library function containing ordering points, Section 5.5).

    ``skip_persist=True`` models a *buggy* hand-rolled version that
    performs the swap outside the safe library path and forgets the
    persist — used by the synthetic bug suite.
    """
    if skip_persist:
        memory.store(address, _struct.pack("<Q", value))
        return
    memory.hint_ordering_point("pobj_atomic_word")
    with memory.library_region("pobj_atomic_word"):
        memory.store(address, _struct.pack("<Q", value))
        pmem.persist(memory, address, 8)
