"""Transaction helpers shared by the tree workloads."""

from __future__ import annotations


class TxAdder:
    """Tracks which objects were already added to the current
    transaction, so each node is TX_ADDed exactly once per transaction
    (PMDK behaves the same way; adding twice is the performance bug the
    detector reports).

    Fault flags suppress specific adds: ``add(node, flag)`` is a no-op
    when ``flag`` is in the workload's fault set.
    """

    def __init__(self, tx, faults=frozenset()):
        self.tx = tx
        self.faults = faults
        self._added = set()

    def add(self, struct, flag=None):
        """Add a whole struct to the undo log (once)."""
        if flag is not None and flag in self.faults:
            return
        if struct.address in self._added:
            return
        self._added.add(struct.address)
        self.tx.add(struct.address, struct.SIZE)

    def add_range(self, address, size, flag=None):
        if flag is not None and flag in self.faults:
            return
        key = (address, size)
        if key in self._added:
            return
        self._added.add(key)
        self.tx.add(address, size)

    def add_field(self, struct, field_name, flag=None):
        if flag is not None and flag in self.faults:
            return
        key = (struct.address, field_name)
        if key in self._added:
            return
        self._added.add(key)
        self.tx.add_field(struct, field_name)

    def force_duplicate(self, struct, condition=True):
        """Deliberately add a struct twice (the synthetic perf bug)."""
        if condition:
            self.tx.add(struct.address, struct.SIZE)
            self.tx.add(struct.address, struct.SIZE)


class NullAdder:
    """An adder that logs nothing — the umbrella synthetic bug of
    skipping every TX_ADD inside one procedure (e.g. a whole red-black
    fix-up)."""

    def add(self, struct, flag=None):
        pass

    def add_range(self, address, size, flag=None):
        pass

    def add_field(self, struct, field_name, flag=None):
        pass
