"""The paper's Figure 2 example: a valid-bit backup over an array.

``update()`` backs up the old element, sets a ``valid`` bit, performs
the in-place update, and resets the bit — with ``persist_barrier()``
calls in all the right places.  With the ``swapped_valid`` fault the
*values* written to ``valid`` are inverted (the paper's green-box fix
undone), so recovery always does the wrong thing: it skips the rollback
of a potentially non-persisted update (cross-failure race) or rolls
back with a stale backup (cross-failure semantic bug).

This is a low-level workload: it registers ``valid`` as a commit
variable and associates the backup fields and the array with it
(Table 2 annotation interface), exactly the amount of annotation the
paper requires of programs built on raw primitives.
"""

from __future__ import annotations

from repro.pmdk import Array, I64, ObjectPool, Struct, U64, pmem
from repro.workloads.base import Workload

LAYOUT = "xf-array-backup"
ARRAY_LEN = 16


class BackupRoot(Struct):
    backup_idx = U64()
    backup_val = I64()
    valid = U64()
    arr = Array(I64, ARRAY_LEN)


class BackupArray:
    """Figure 2's update/recover pair over a persistent array."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    @property
    def root(self):
        return self.pool.root

    def annotate(self, interface):
        """Register the commit variable and its associated range.

        ``valid`` versions the *backup slots* (the data that alternates
        between generations); the array itself is protected in place by
        the rollback and is not part of the versioned set — associating
        it would mark long-untouched elements stale on every commit.
        """
        root = self.root
        name = interface.add_commit_var(
            root.field_addr("valid"), 8, "valid"
        )
        interface.add_commit_range(name, root.field_addr("backup_idx"), 16)

    def update(self, idx, new_value):
        """Paper Figure 2 ``update()``."""
        memory = self.memory
        root = self.root
        buggy = "swapped_valid" in self.faults

        root.backup_idx = idx
        root.backup_val = root.arr[idx]
        pmem.persist(memory, root.field_addr("backup_idx"), 16)

        root.valid = 0 if buggy else 1  # paper: should be 1
        pmem.persist(memory, root.field_addr("valid"), 8)

        root.arr[idx] = new_value
        rng = root.arr.element_range(idx)
        pmem.persist(memory, rng.start, rng.size)

        root.valid = 1 if buggy else 0  # paper: should be 0
        pmem.persist(memory, root.field_addr("valid"), 8)

    def recover(self):
        """Paper Figure 2 ``recover()``: roll back if the backup is
        valid."""
        memory = self.memory
        root = self.root
        if root.valid:
            idx = root.backup_idx
            root.arr[idx] = root.backup_val
            rng = root.arr.element_range(idx)
            pmem.persist(memory, rng.start, rng.size)
            root.valid = 0
            pmem.persist(memory, root.field_addr("valid"), 8)

    def read_all(self):
        return [self.root.arr[i] for i in range(ARRAY_LEN)]


class ArrayBackupWorkload(Workload):
    """Figure 2 as a detectable workload."""

    name = "array_backup"

    FAULTS = {
        "swapped_valid": (
            "S",
            "update() writes inverted values to the valid bit "
            "(paper Figure 2)",
        ),
    }

    def _open(self, memory):
        pool = ObjectPool.open(memory, "array_backup", LAYOUT, BackupRoot)
        return BackupArray(pool, self.faults)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "array_backup", LAYOUT, size=self.pool_size,
            root_cls=BackupRoot,
        )
        root = pool.root
        root.backup_idx = 0
        root.backup_val = 0
        root.valid = 0
        for i in range(ARRAY_LEN):
            root.arr[i] = 10 * (i + 1)
        pmem.persist(ctx.memory, root.address, BackupRoot.SIZE)

    def pre_failure(self, ctx):
        backup = self._open(ctx.memory)
        backup.annotate(ctx.interface)
        for step in range(self.test_size):
            backup.update(step % ARRAY_LEN, 1000 + step)

    def post_failure(self, ctx):
        backup = self._open(ctx.memory)
        backup.annotate(ctx.interface)
        backup.recover()
        # Resume: the application reads the array.
        backup.read_all()
