"""Workload protocol and fault-flag plumbing."""

from __future__ import annotations

from repro.errors import TraversalLimitError

#: Default step bound for structural walks.  Far above any reachable
#: structure size at test sizings (trees/lists of a few thousand
#: nodes), so only genuine cycles ever hit it.
TRAVERSAL_LIMIT = 1 << 16


class TraversalGuard:
    """Bounds a data-structure walk against cyclic corruption.

    A crash image can contain pointer cycles (e.g. a node whose child
    pointer survived a failure mid-update and loops back onto an
    ancestor), turning a recovery traversal into a livelock.  Calling
    :meth:`step` once per visited node raises a diagnosable
    :class:`~repro.errors.TraversalLimitError` — which the frontend
    reports as a post-failure crash *finding* — instead of spinning
    until the deadline watchdog kills the worker with less provenance.
    """

    __slots__ = ("what", "limit", "steps")

    def __init__(self, what, limit=TRAVERSAL_LIMIT):
        self.what = what
        self.limit = limit
        self.steps = 0

    def step(self):
        self.steps += 1
        if self.steps > self.limit:
            raise TraversalLimitError(
                f"{self.what}: traversal exceeded {self.limit} steps "
                f"(cyclic corruption in the crash image?)"
            )


class Workload:
    """One testable PM program.

    Subclasses implement three stages, each receiving an
    :class:`~repro.core.frontend.ExecutionContext`:

    * :meth:`setup` — create the pool and populate the initial PM image
      (the paper's ``INITSIZE`` insertions).  Runs with failure
      injection and detection suppressed.
    * :meth:`pre_failure` — the updates under test (``TESTSIZE``
      operations).  Failure points are injected at its ordering points.
    * :meth:`post_failure` — recovery plus resumption, run once per
      failure point on a copy of the PM image.  Remember that this
      stage models a *fresh process*: it must rediscover all state from
      PM (open the pool, re-derive counters), never from Python
      attributes set by :meth:`pre_failure`.

    ``faults`` is a set of string flags switching on synthetic bugs;
    the class attribute :attr:`FAULTS` documents the flags a workload
    understands, mapping each to its expected bug class (``"R"`` race,
    ``"S"`` semantic, ``"P"`` performance).
    """

    #: Paper-style workload name (overridden by subclasses).
    name = "workload"

    #: True when the workload annotates its own region of interest;
    #: otherwise the whole pre-/post-failure stage is the RoI.
    uses_roi = False

    #: Documented fault flags: {flag: (bug_class, description)}.
    FAULTS = {}

    def __init__(self, faults=(), init_size=0, test_size=1, **options):
        unknown = set(faults) - set(self.FAULTS)
        if unknown:
            raise ValueError(
                f"{self.name}: unknown fault flag(s): {sorted(unknown)}"
            )
        self.faults = frozenset(faults)
        self.init_size = init_size
        self.test_size = test_size
        self.options = options

    def has_fault(self, flag):
        return flag in self.faults

    @property
    def pool_size(self):
        """Pool size in bytes (``pool_size=`` option), or None for the
        platform default.  Real PMDK pools are routinely far larger
        than the test default, which is what makes crash-image
        copy-elision measurable — benchmarks size the pool explicitly
        instead of patching constants."""
        return self.options.get("pool_size")

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def setup(self, ctx):
        """Create pools and the initial PM image (not under test)."""

    def pre_failure(self, ctx):
        raise NotImplementedError

    def post_failure(self, ctx):
        raise NotImplementedError

    # ------------------------------------------------------------------

    @classmethod
    def fault_flags(cls, bug_class=None):
        """Documented fault flags, optionally filtered by bug class."""
        return [
            flag
            for flag, (kind, _description) in cls.FAULTS.items()
            if bug_class is None or kind == bug_class
        ]

    def __repr__(self):
        fault_text = f", faults={sorted(self.faults)}" if self.faults else ""
        return (
            f"{type(self).__name__}(init={self.init_size}, "
            f"test={self.test_size}{fault_text})"
        )


def deterministic_keys(count, seed=1, modulus=(1 << 31) - 1):
    """A reproducible pseudo-random key sequence (no global RNG state).

    A multiplicative Lehmer generator: good enough dispersion for tree
    and hash workloads while keeping every run identical, which the
    snapshot-replay frontend requires.
    """
    keys = []
    state = seed % modulus or 1
    for _ in range(count):
        state = (state * 48271) % modulus
        keys.append(state)
    return keys
