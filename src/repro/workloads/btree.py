"""B-Tree: the transactional B-tree of PMDK's examples (Table 4).

An order-4 B-tree (at most 3 items per node) with preemptive top-down
splitting, every mutation wrapped in an undo-log transaction.  Deletion
is lazy (leaf-only compaction, no rebalancing), like the PMDK example's
simple variant.

The synthetic fault flags each omit one specific ``TX_ADD``, mirroring
the PMTest bug-suite patches the paper validates against (Table 5):
B-Tree carries the largest share of the suite (12 race bugs, 2
performance bugs).
"""

from __future__ import annotations

from repro.pmdk import Array, ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads._txutil import TxAdder
from repro.workloads.base import (
    TraversalGuard,
    Workload,
    deterministic_keys,
)

LAYOUT = "xf-btree"

#: Maximum children per node; max items per node is ORDER - 1.
ORDER = 4
MAX_ITEMS = ORDER - 1


class BTreeNode(Struct):
    nkeys = U64()
    is_leaf = U64()
    keys = Array(U64, MAX_ITEMS)
    values = Array(U64, MAX_ITEMS)
    children = Array(U64, ORDER)


class BTreeRoot(Struct):
    root_ptr = Ptr()
    count = U64()


class BTree:
    """Persistent B-tree operations."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    @property
    def root(self):
        return self.pool.root

    def _node(self, address):
        return BTreeNode(self.memory, address)

    def _new_node(self, adder, is_leaf, flag=None):
        node = self.pool.alloc(BTreeNode)
        adder.add(node, flag)
        node.nkeys = 0
        node.is_leaf = 1 if is_leaf else 0
        return node

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key, value):
        pool = self.pool
        root = self.root
        updated = False
        update_slot = None
        with pool.transaction() as tx:
            adder = TxAdder(tx, self.faults)
            if "dup_add_count" in self.faults:
                adder.force_duplicate(root)
            if root.root_ptr == 0:
                leaf = self._new_node(adder, is_leaf=True,
                                      flag="skip_add_leaf")
                self._place_item(leaf, 0, key, value)
                leaf.nkeys = 1
                adder.add_field(root, "root_ptr", "skip_add_root_ptr")
                root.root_ptr = leaf.address
                self._bump_count(tx, adder, root)
                return
            node = self._node(root.root_ptr)
            if node.nkeys == MAX_ITEMS:
                # Preemptive root split: a fresh root with one child.
                # Both adds of the fresh root fall under the same fault
                # flag — it is one object, logged once.
                new_root = self._new_node(adder, is_leaf=False,
                                          flag="skip_add_new_root")
                new_root.children[0] = node.address
                self._split_child(adder, new_root, 0, node,
                                  parent_flag="skip_add_new_root")
                adder.add_field(root, "root_ptr", "skip_add_root_ptr")
                root.root_ptr = new_root.address
                node = new_root
            updated, update_slot = self._insert_nonfull(
                adder, node, key, value
            )
            if not updated:
                self._bump_count(tx, adder, root)
        if "count_outside_tx" in self.faults and not updated:
            # BUG: count bumped outside the transaction, never flushed.
            root.count = root.count + 1
        if (
            updated
            and update_slot is not None
            and "unpersisted_value_write" in self.faults
        ):
            # BUG: a raw value write after the transaction ended,
            # outside any persistence discipline.
            self.memory.store(
                update_slot, int(value).to_bytes(8, "little")
            )

    def _bump_count(self, tx, adder, root):
        if "count_outside_tx" in self.faults:
            return  # handled (buggily) after TX_END
        adder.add_field(root, "count", "skip_add_count")
        root.count = root.count + 1

    def _insert_nonfull(self, adder, node, key, value):
        """Insert below ``node`` (known non-full).  Returns
        ``(updated, value_slot_addr)``: True when an existing key was
        updated in place."""
        guard = TraversalGuard("btree insert descent")
        while True:
            guard.step()
            nkeys = node.nkeys
            if node.is_leaf:
                idx = self._search(node, key)
                if idx is not None:
                    adder.add(node, "skip_add_update_value")
                    node.values[idx] = value
                    return True, node.values.element_range(idx).start
                adder.add(node, "skip_add_leaf")
                pos = nkeys
                while pos > 0 and node.keys[pos - 1] > key:
                    node.keys[pos] = node.keys[pos - 1]
                    node.values[pos] = node.values[pos - 1]
                    pos -= 1
                self._place_item(node, pos, key, value)
                node.nkeys = nkeys + 1
                return False, None
            idx = self._search(node, key)
            if idx is not None:
                adder.add(node, "skip_add_update_value")
                node.values[idx] = value
                return True, node.values.element_range(idx).start
            pos = self._child_slot(node, key)
            child = self._node(node.children[pos])
            if child.nkeys == MAX_ITEMS:
                self._split_child(adder, node, pos, child)
                # The separator moved up; re-pick the side.
                if key == node.keys[pos]:
                    adder.add(node, "skip_add_update_value")
                    node.values[pos] = value
                    return True, node.values.element_range(pos).start
                if key > node.keys[pos]:
                    pos += 1
                child = self._node(node.children[pos])
            node = child

    def _split_child(self, adder, parent, slot, child,
                     parent_flag="skip_add_parent_split"):
        """Split full ``child``; middle item moves up into ``parent`` at
        ``slot``."""
        adder.add(parent, parent_flag)
        adder.add(child, "skip_add_split_child")
        sibling = self._new_node(
            adder, is_leaf=bool(child.is_leaf),
            flag="skip_add_new_sibling",
        )
        mid = MAX_ITEMS // 2
        right_items = MAX_ITEMS - mid - 1
        for i in range(right_items):
            sibling.keys[i] = child.keys[mid + 1 + i]
            sibling.values[i] = child.values[mid + 1 + i]
        if not child.is_leaf:
            for i in range(right_items + 1):
                sibling.children[i] = child.children[mid + 1 + i]
        sibling.nkeys = right_items
        mid_key = child.keys[mid]
        mid_value = child.values[mid]
        child.nkeys = mid
        # Shift parent items/children right to make room at slot.
        pkeys = parent.nkeys
        for i in range(pkeys, slot, -1):
            parent.keys[i] = parent.keys[i - 1]
            parent.values[i] = parent.values[i - 1]
            parent.children[i + 1] = parent.children[i]
        parent.keys[slot] = mid_key
        parent.values[slot] = mid_value
        parent.children[slot + 1] = sibling.address
        parent.nkeys = pkeys + 1

    def _place_item(self, node, pos, key, value):
        node.keys[pos] = key
        node.values[pos] = value

    # ------------------------------------------------------------------
    # Remove (lazy: leaf compaction only)
    # ------------------------------------------------------------------

    def remove(self, key):
        root = self.root
        if root.root_ptr == 0:
            return False
        node = self._node(root.root_ptr)
        guard = TraversalGuard("btree remove descent")
        while True:
            guard.step()
            idx = self._search(node, key)
            if node.is_leaf:
                break
            if idx is not None:
                # Internal hit: lazy delete not supported there; treat
                # as an in-place tombstone via value overwrite.
                with self.pool.transaction() as tx:
                    adder = TxAdder(tx, self.faults)
                    adder.add(node, "skip_add_remove_leaf")
                    node.values[idx] = 0
                return True
            node = self._node(
                node.children[self._child_slot(node, key)]
            )
        if idx is None:
            return False
        with self.pool.transaction() as tx:
            adder = TxAdder(tx, self.faults)
            adder.add(node, "skip_add_remove_leaf")
            nkeys = node.nkeys
            for i in range(idx, nkeys - 1):
                node.keys[i] = node.keys[i + 1]
                node.values[i] = node.values[i + 1]
            node.nkeys = nkeys - 1
            adder.add_field(root, "count", "skip_add_count_remove")
            root.count = root.count - 1
        return True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _search(self, node, key):
        """Index of ``key`` inside ``node``, or None."""
        for i in range(node.nkeys):
            if node.keys[i] == key:
                return i
        return None

    def _child_slot(self, node, key):
        pos = 0
        while pos < node.nkeys and key > node.keys[pos]:
            pos += 1
        return pos

    def get(self, key):
        root = self.root
        if root.root_ptr == 0:
            return None
        node = self._node(root.root_ptr)
        guard = TraversalGuard("btree lookup descent")
        while True:
            guard.step()
            idx = self._search(node, key)
            if idx is not None:
                return node.values[idx]
            if node.is_leaf:
                return None
            node = self._node(
                node.children[self._child_slot(node, key)]
            )

    def items(self):
        """All (key, value) pairs in key order."""
        pairs = []
        root = self.root
        if root.root_ptr:
            self._walk(self._node(root.root_ptr), pairs)
        return pairs

    def _walk(self, node, pairs):
        nkeys = node.nkeys
        if node.is_leaf:
            for i in range(nkeys):
                pairs.append((node.keys[i], node.values[i]))
            return
        for i in range(nkeys):
            self._walk(self._node(node.children[i]), pairs)
            pairs.append((node.keys[i], node.values[i]))
        self._walk(self._node(node.children[nkeys]), pairs)

    def count(self):
        return self.root.count

    def check(self):
        """Structural invariant check (for the test suite): keys in
        order, leaf depth uniform."""
        pairs = self.items()
        keys = [key for key, _value in pairs]
        assert keys == sorted(keys), "B-tree keys out of order"
        root = self.root
        if root.root_ptr:
            self._check_depth(self._node(root.root_ptr))
        return True

    def _check_depth(self, node):
        if node.is_leaf:
            return 1
        depths = {
            self._check_depth(self._node(node.children[i]))
            for i in range(node.nkeys + 1)
        }
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1


class BTreeWorkload(Workload):
    """Table 4's B-Tree as a detectable workload."""

    name = "btree"

    FAULTS = {
        "skip_add_root_ptr": ("R", "insert: root pointer not TX_ADDed"),
        "skip_add_count": ("R", "insert: count not TX_ADDed"),
        "skip_add_leaf": ("R", "insert: target leaf not TX_ADDed"),
        "skip_add_new_root": ("R", "split: new root node not TX_ADDed"),
        "skip_add_split_child": ("R", "split: shrunk child not TX_ADDed"),
        "skip_add_new_sibling": ("R", "split: new sibling not TX_ADDed"),
        "skip_add_parent_split": ("R", "split: parent not TX_ADDed"),
        "skip_add_update_value": ("R", "update: value not TX_ADDed"),
        "count_outside_tx": ("R", "insert: count updated outside tx"),
        "skip_add_remove_leaf": ("R", "remove: leaf not TX_ADDed"),
        "skip_add_count_remove": ("R", "remove: count not TX_ADDed"),
        "unpersisted_value_write": (
            "R", "update: extra raw value write outside persistence",
        ),
        "dup_add_count": ("P", "insert: root struct TX_ADDed twice"),
        "dup_add_leaf": ("P", "insert: leaf TX_ADDed twice"),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 key_order="hashed", **options):
        super().__init__(faults, init_size, test_size, **options)
        if key_order not in ("hashed", "ascending", "descending"):
            raise ValueError(f"unknown key order: {key_order!r}")
        self.key_order = key_order

    def _keys(self):
        total = self.init_size + self.test_size + 1
        if self.key_order == "ascending":
            return list(range(1, total + 1))
        if self.key_order == "descending":
            return list(range(total, 0, -1))
        return deterministic_keys(total, seed=5)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "btree", LAYOUT, size=self.pool_size,
            root_cls=BTreeRoot,
        )
        root = pool.root
        root.root_ptr = 0
        root.count = 0
        pmem.persist(ctx.memory, root.address, BTreeRoot.SIZE)
        tree = BTree(pool, self.faults)
        for key in self._keys()[: self.init_size]:
            tree.insert(key, key ^ 0xFF)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "btree", LAYOUT, BTreeRoot)
        tree = BTree(pool, self.faults)
        if "dup_add_leaf" in self.faults:
            # Trigger the duplicate-add perf bug explicitly: one insert
            # whose leaf is logged twice.
            tree.faults = frozenset(self.faults - {"dup_add_leaf"})
            with pool.transaction() as tx:
                if pool.root.root_ptr:
                    node = BTreeNode(ctx.memory, pool.root.root_ptr)
                    tx.add(node.address, BTreeNode.SIZE)
                    tx.add(node.address, BTreeNode.SIZE)
        keys = self._keys()
        test_keys = keys[self.init_size:self.init_size + self.test_size]
        for key in test_keys:
            tree.insert(key, key ^ 0xAB)
        if len(test_keys) >= 2:
            tree.insert(test_keys[0], 0xDEAD)  # update path
            tree.remove(test_keys[1])

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "btree", LAYOUT, BTreeRoot)
        tree = BTree(pool, self.faults)
        tree.items()  # full structural walk
        tree.count()
        tree.insert(self._keys()[-1], 0xBEEF)  # resumption
