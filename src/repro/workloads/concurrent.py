"""Multithreaded PM workloads (paper Section 7).

The paper's frontend is thread-safe and its evaluated multithreaded
workloads run "PM operations on independent tasks (e.g., each thread
takes a different request)".  This module reproduces that setting: N
client threads, each owning its own pool and persistent hashmap,
perform their inserts concurrently during the pre-failure stage.  The
runtime's lock makes each traced operation atomic, so every injected
failure point sees a consistent snapshot regardless of thread
interleaving; recovery in the post-failure stage is single-threaded,
as a real restart would be.

Fault flags are forwarded to every client, so the entire synthetic bug
surface of :class:`~repro.workloads.hashmap_tx.HashmapTxWorkload` is
available under concurrency.
"""

from __future__ import annotations

import threading

from repro.pmdk import ObjectPool, pmem
from repro.workloads.base import Workload, deterministic_keys
from repro.workloads.hashmap_tx import (
    HashmapTX,
    LAYOUT,
    TxRoot,
)


class ConcurrentHashmapWorkload(Workload):
    """N threads, each inserting into its own persistent hashmap."""

    name = "concurrent_hashmap"

    #: Same fault surface as the single-threaded hashmap (every client
    #: runs the same code).
    FAULTS = {
        flag: spec
        for flag, spec in
        __import__(
            "repro.workloads.hashmap_tx", fromlist=["HashmapTxWorkload"]
        ).HashmapTxWorkload.FAULTS.items()
        if flag != "unpersisted_create_seed"  # creation stays in setup
    }

    def __init__(self, faults=(), init_size=0, test_size=2,
                 clients=3, **options):
        super().__init__(faults, init_size, test_size, **options)
        if clients < 1:
            raise ValueError("need at least one client")
        self.clients = clients

    def _pool_name(self, client):
        return f"chm-{client}"

    def _keys(self, client):
        return deterministic_keys(
            self.init_size + self.test_size, seed=17 + client
        )

    def setup(self, ctx):
        for client in range(self.clients):
            pool = ObjectPool.create(
                ctx.memory, self._pool_name(client), LAYOUT,
                root_cls=TxRoot,
            )
            hashmap = HashmapTX.create(pool, faults=self.faults)
            for key in self._keys(client)[: self.init_size]:
                hashmap.insert(key, key ^ 0xFF)

    def _client_body(self, ctx, client, errors):
        try:
            pool = ObjectPool.open(
                ctx.memory, self._pool_name(client), LAYOUT, TxRoot
            )
            hashmap = HashmapTX(pool, self.faults)
            keys = self._keys(client)
            for key in keys[self.init_size:]:
                hashmap.insert(key, key ^ 0xAB)
        except Exception as exc:  # surfaced by pre_failure
            errors.append((client, exc))

    def pre_failure(self, ctx):
        errors = []
        threads = [
            threading.Thread(
                target=self._client_body, args=(ctx, client, errors),
                name=f"client-{client}",
            )
            for client in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            client, exc = errors[0]
            raise RuntimeError(f"client {client} failed") from exc

    def post_failure(self, ctx):
        # Recovery after a crash is single-threaded: open every pool
        # (rolling back its interrupted transaction) and verify it.
        for client in range(self.clients):
            pool = ObjectPool.open(
                ctx.memory, self._pool_name(client), LAYOUT, TxRoot
            )
            hashmap = HashmapTX(pool, self.faults)
            hashmap.verify()


def client_states(memory, workload):
    """Items per client pool — used by tests to check per-client
    transaction atomicity."""
    states = []
    for client in range(workload.clients):
        pool = ObjectPool.open(
            memory, workload._pool_name(client), LAYOUT, TxRoot
        )
        states.append(HashmapTX(pool).items())
    return states
