"""C-Tree: the crit-bit tree of PMDK's examples (Table 4).

A binary radix (crit-bit) tree: internal nodes store the index of the
highest bit where the two subtrees differ; leaves store key/value.
Leaf pointers are tagged in their lowest bit (allocations are 64-byte
aligned, so the bit is free) to distinguish them from internal nodes,
as PMDK's example does.  Every mutation runs inside a transaction.
"""

from __future__ import annotations

from repro.pmdk import ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads._txutil import TxAdder
from repro.workloads.base import (
    TraversalGuard, Workload, deterministic_keys,
)

LAYOUT = "xf-ctree"

KEY_BITS = 64


class CTreeInternal(Struct):
    diff = U64()  # critical bit index (higher = nearer the root)
    left = Ptr()
    right = Ptr()


class CTreeLeaf(Struct):
    key = U64()
    value = U64()


class CTreeRoot(Struct):
    root_ptr = Ptr()
    count = U64()


def _tag_leaf(address):
    return address | 1


def _is_leaf(pointer):
    return bool(pointer & 1)


def _untag(pointer):
    return pointer & ~1


def _bit(key, index):
    return (key >> index) & 1


def _critical_bit(a, b):
    """Index of the highest differing bit between two distinct keys."""
    return (a ^ b).bit_length() - 1


class CTree:
    """Persistent crit-bit tree operations."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    @property
    def root(self):
        return self.pool.root

    def _leaf(self, pointer):
        return CTreeLeaf(self.memory, _untag(pointer))

    def _internal(self, pointer):
        return CTreeInternal(self.memory, pointer)

    def _descend_leaf(self, key):
        """The leaf a lookup for ``key`` lands on (None when empty)."""
        pointer = self.root.root_ptr
        if pointer == 0:
            return None
        guard = TraversalGuard("ctree lookup descent")
        while not _is_leaf(pointer):
            guard.step()
            node = self._internal(pointer)
            pointer = node.right if _bit(key, node.diff) else node.left
        return self._leaf(pointer)

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key, value):
        pool = self.pool
        root = self.root
        with pool.transaction() as tx:
            adder = TxAdder(tx, self.faults)
            if "dup_add_parent" in self.faults:
                adder.force_duplicate(root)
            landing = self._descend_leaf(key)
            if landing is None:
                leaf = self._new_leaf(adder, key, value)
                adder.add_field(root, "root_ptr", "skip_add_parent_ptr")
                root.root_ptr = _tag_leaf(leaf.address)
                self._bump_count(adder, +1)
                return
            if landing.key == key:
                adder.add(landing, "skip_add_update_value")
                landing.value = value
                return
            diff = _critical_bit(key, landing.key)
            leaf = self._new_leaf(adder, key, value)
            node = pool.alloc(CTreeInternal)
            adder.add(node, "skip_add_new_internal")
            node.diff = diff
            if _bit(key, diff):
                node.left = 0  # placeholder, set below
                node.right = _tag_leaf(leaf.address)
            else:
                node.left = _tag_leaf(leaf.address)
                node.right = 0
            # Re-descend to find the edge where the new internal node
            # belongs: the first pointer whose subtree has diff < ours.
            parent, field, pointer = self._find_edge(key, diff)
            if _bit(key, diff):
                node.left = pointer
            else:
                node.right = pointer
            if parent is None:
                adder.add_field(root, "root_ptr", "skip_add_parent_ptr")
                root.root_ptr = node.address
            else:
                adder.add_field(parent, field, "skip_add_parent_ptr")
                setattr(parent, field, node.address)
            self._bump_count(adder, +1)

    def _new_leaf(self, adder, key, value):
        leaf = self.pool.alloc(CTreeLeaf)
        adder.add(leaf, "skip_add_new_leaf")
        leaf.key = key
        leaf.value = value
        return leaf

    def _bump_count(self, adder, delta):
        root = self.root
        adder.add_field(root, "count", "skip_add_count")
        root.count = root.count + delta

    def _find_edge(self, key, diff):
        """Walk from the root to the edge where a node with critical
        bit ``diff`` must be spliced in.

        Returns ``(parent_internal_or_None, field_name, pointer)``.
        """
        parent = None
        field = None
        guard = TraversalGuard("ctree insert descent")
        pointer = self.root.root_ptr
        while not _is_leaf(pointer):
            guard.step()
            node = self._internal(pointer)
            if node.diff < diff:
                break
            parent = node
            field = "right" if _bit(key, node.diff) else "left"
            pointer = getattr(node, field)
        return parent, field, pointer

    # ------------------------------------------------------------------
    # Remove
    # ------------------------------------------------------------------

    def remove(self, key):
        root = self.root
        pointer = root.root_ptr
        if pointer == 0:
            return False
        grand = None
        grand_field = None
        parent = None
        parent_field = None
        guard = TraversalGuard("ctree remove descent")
        while not _is_leaf(pointer):
            guard.step()
            node = self._internal(pointer)
            grand, grand_field = parent, parent_field
            parent = node
            parent_field = "right" if _bit(key, node.diff) else "left"
            pointer = getattr(node, parent_field)
        leaf = self._leaf(pointer)
        if leaf.key != key:
            return False
        with self.pool.transaction() as tx:
            adder = TxAdder(tx, self.faults)
            if parent is None:
                adder.add_field(root, "root_ptr", "skip_add_remove_ptr")
                root.root_ptr = 0
            else:
                sibling_field = (
                    "left" if parent_field == "right" else "right"
                )
                sibling = getattr(parent, sibling_field)
                if grand is None:
                    adder.add_field(
                        root, "root_ptr", "skip_add_remove_ptr"
                    )
                    root.root_ptr = sibling
                else:
                    adder.add_field(
                        grand, grand_field, "skip_add_remove_ptr"
                    )
                    setattr(grand, grand_field, sibling)
            self._bump_count(adder, -1)
            tx.free(_untag(pointer))  # TX_FREE: released at commit
            if parent is not None:
                tx.free(parent.address)
        return True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key):
        leaf = self._descend_leaf(key)
        if leaf is not None and leaf.key == key:
            return leaf.value
        return None

    def items(self):
        pairs = []
        pointer = self.root.root_ptr
        if pointer:
            self._walk(pointer, pairs)
        return sorted(pairs)

    def _walk(self, pointer, pairs):
        if _is_leaf(pointer):
            leaf = self._leaf(pointer)
            pairs.append((leaf.key, leaf.value))
            return
        node = self._internal(pointer)
        self._walk(node.left, pairs)
        self._walk(node.right, pairs)

    def count(self):
        return self.root.count

    def check(self):
        """Invariant: along any path, diff values strictly decrease, and
        each leaf's key matches the branch bits taken."""
        pointer = self.root.root_ptr
        if pointer:
            self._check_subtree(pointer, KEY_BITS)
        return True

    def _check_subtree(self, pointer, bound):
        if _is_leaf(pointer):
            return
        node = self._internal(pointer)
        assert node.diff < bound, "crit-bit order violated"
        self._check_subtree(node.left, node.diff)
        self._check_subtree(node.right, node.diff)


class CTreeWorkload(Workload):
    """Table 4's C-Tree as a detectable workload."""

    name = "ctree"

    FAULTS = {
        "skip_add_parent_ptr": (
            "R", "insert: spliced parent pointer not TX_ADDed",
        ),
        "skip_add_new_internal": (
            "R", "insert: new internal node not TX_ADDed",
        ),
        "skip_add_new_leaf": ("R", "insert: new leaf not TX_ADDed"),
        "skip_add_count": ("R", "insert: count not TX_ADDed"),
        "skip_add_remove_ptr": (
            "R", "remove: replacement pointer not TX_ADDed",
        ),
        "skip_add_update_value": ("R", "update: value not TX_ADDed"),
        "dup_add_parent": ("P", "insert: root struct TX_ADDed twice"),
    }

    def __init__(self, faults=(), init_size=0, test_size=1, **options):
        super().__init__(faults, init_size, test_size, **options)

    def _keys(self):
        return deterministic_keys(self.init_size + self.test_size + 1,
                                  seed=9)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "ctree", LAYOUT, size=self.pool_size,
            root_cls=CTreeRoot,
        )
        root = pool.root
        root.root_ptr = 0
        root.count = 0
        pmem.persist(ctx.memory, root.address, CTreeRoot.SIZE)
        tree = CTree(pool, self.faults)
        for key in self._keys()[: self.init_size]:
            tree.insert(key, key ^ 0xFF)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "ctree", LAYOUT, CTreeRoot)
        tree = CTree(pool, self.faults)
        keys = self._keys()
        test_keys = keys[self.init_size:self.init_size + self.test_size]
        for key in test_keys:
            tree.insert(key, key ^ 0xAB)
        if len(test_keys) >= 2:
            tree.insert(test_keys[0], 0xDEAD)  # update path
            tree.remove(test_keys[1])

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "ctree", LAYOUT, CTreeRoot)
        tree = CTree(pool, self.faults)
        tree.items()
        tree.count()
        tree.insert(self._keys()[-1], 0xBEEF)
