"""Hashmap-Atomic: the low-level hashmap of PMDK's examples (Table 4).

Unlike Hashmap-TX this structure uses no transactions: entries are made
reachable by atomic 8-byte pointer swaps (PMDK's atomic list API), and
the element count is protected by a ``count_dirty`` commit variable —
when a failure interrupts an update, recovery recounts the entries and
rebuilds ``count``.

The header struct is embedded in the pool root, as in PMDK's example
where the hashmap object exists (zero-filled) before ``create_hashmap``
populates it.  That is precisely what makes two of the paper's new bugs
(Section 6.3.2) observable:

* **Bug 1** (``bug1_unpersisted_create``): ``create_hashmap`` assigns
  the hash-function parameters and seed but persists nothing until the
  very end; a failure during creation (e.g. at the bucket-table
  allocation) leaves them volatile and the post-failure hash
  computation reads them — a cross-failure race.
* **Bug 2** (``bug2_uninit_count``): ``count`` is never explicitly
  initialized; the example relies on the allocator's implicit
  zero-fill, which "is not guaranteed" — reading it after a failure is
  a cross-failure race on allocated-but-uninitialized PM.

The detector needs exactly one annotation here: the ``count_dirty``
commit variable with ``count`` as its associated range (paper: "We only
annotated a commit variable, count_dirty, to detect these two bugs").
"""

from __future__ import annotations

from repro.pmdk import Embed, ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads._parray import PersistentPtrArray, atomic_word_write
from repro.workloads.base import (
    TraversalGuard, Workload, deterministic_keys,
)

LAYOUT = "xf-hashmap-atomic"
DEFAULT_NBUCKETS = 16

#: Fault flags that move hashmap creation into the pre-failure RoI.
CREATE_FAULTS = frozenset({
    "bug1_unpersisted_create",
    "bug2_uninit_count",
    "skip_persist_buckets_init",
    "skip_persist_geometry",
})


class AtomicHashmapHeader(Struct):
    seed = U64()
    hash_a = U64()
    hash_b = U64()
    count = U64()
    count_dirty = U64()
    nbuckets = U64()
    buckets = Ptr()


class AtomicRoot(Struct):
    hashmap = Embed(AtomicHashmapHeader)


class AtomicEntry(Struct):
    next = Ptr()
    key = U64()
    value = U64()


class HashmapAtomic:
    """Low-level hashmap operations with a count_dirty commit variable."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    # ------------------------------------------------------------------
    # Construction (paper Figure 14a)
    # ------------------------------------------------------------------

    def create(self, nbuckets=DEFAULT_NBUCKETS, seed=11):
        """Populate the (pre-allocated, zero-filled) header."""
        memory = self.memory
        header = self.header
        faults = self.faults

        # Hash metadata.  The buggy original persists nothing until the
        # end of creation (Bug 1); the fixed version persists stepwise.
        header.seed = seed
        header.hash_a = 2654435761
        header.hash_b = 40503
        if "bug1_unpersisted_create" not in faults:
            pmem.persist(memory, header.field_addr("seed"), 24)

        if "bug2_uninit_count" not in faults:
            # The fix for Bug 2: initialize count instead of relying on
            # the allocator's implicit zero-fill.
            header.count = 0
            header.count_dirty = 0
            pmem.persist(memory, header.field_addr("count"), 16)

        table_addr = self.pool.alloc(8 * nbuckets, zero=True)
        table = PersistentPtrArray(memory, table_addr, nbuckets)
        table.zero_fill()
        if "skip_persist_buckets_init" not in faults:
            table.persist_all()
        header.nbuckets = nbuckets
        header.buckets = table_addr
        if "skip_persist_geometry" not in faults:
            pmem.persist(memory, header.field_addr("nbuckets"), 16)
        if "bug1_unpersisted_create" in faults:
            # The original code's single trailing persist — too late for
            # the failure points injected during creation.
            pmem.persist(memory, header.address, AtomicHashmapHeader.SIZE)
        return self

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    @property
    def header(self):
        return self.pool.root.hashmap

    def annotate(self, interface):
        """The single annotation the paper needs for this workload."""
        header = self.header
        name = interface.add_commit_var(
            header.field_addr("count_dirty"), 8, "count_dirty"
        )
        interface.add_commit_range(name, header.field_addr("count"), 8)

    def _table(self, header):
        return PersistentPtrArray(
            self.memory, header.buckets, header.nbuckets
        )

    def _bucket_of(self, header, key):
        return (
            (header.hash_a * key + header.hash_b) ^ header.seed
        ) % header.nbuckets

    def _has(self, flag):
        return flag in self.faults

    def _persist_unless(self, flag, addr, size):
        if not self._has(flag):
            pmem.persist(self.memory, addr, size)

    def is_created(self):
        """Post-failure sanity probe, as the application would do."""
        return self.header.nbuckets != 0

    # ------------------------------------------------------------------
    # Operations (paper Figure 14a lines 10-16 pattern)
    # ------------------------------------------------------------------

    def _set_dirty(self, header, value):
        header.count_dirty = value
        pmem.persist(self.memory, header.field_addr("count_dirty"), 8)

    def insert(self, key, value):
        memory = self.memory
        header = self.header
        table = self._table(header)
        idx = self._bucket_of(header, key)

        dirty_on_entry = 0 if self._has("swapped_dirty") else 1
        if not self._has("skip_dirty_set"):
            self._set_dirty(header, dirty_on_entry)
        if self._has("early_dirty_clear"):
            # BUG: the commit variable is reset before the update it
            # guards has even begun.
            self._set_dirty(header, 0)

        entry = self.pool.alloc(AtomicEntry)
        if self._has("unordered_link_before_entry"):
            # BUG: make the entry reachable before its fields persist.
            atomic_word_write(memory, table.addr_of(idx), entry.address)
            entry.key = key
            entry.value = value
            entry.next = 0
            pmem.persist(memory, entry.address, AtomicEntry.SIZE)
        else:
            entry.key = key
            entry.value = value
            entry.next = table.get(idx)
            self._persist_unless(
                "skip_persist_entry", entry.address, AtomicEntry.SIZE
            )
            if self._has("redundant_flush_entry"):
                pmem.persist(memory, entry.address, AtomicEntry.SIZE)
            atomic_word_write(
                memory,
                table.addr_of(idx),
                entry.address,
                skip_persist=self._has("skip_persist_bucket_link"),
            )

        header.count = header.count + 1
        if self._has("skip_fence_count"):
            pmem.flush(memory, header.field_addr("count"), 8)
        else:
            self._persist_unless(
                "skip_persist_count", header.field_addr("count"), 8
            )
        if self._has("redundant_flush_count"):
            pmem.persist(memory, header.field_addr("count"), 8)

        if not self._has("skip_dirty_set"):
            self._set_dirty(
                header, 1 if self._has("swapped_dirty") else 0
            )

    def update(self, key, value):
        """Overwrite the value of an existing key (atomic 8-byte
        update)."""
        memory = self.memory
        entry = self._find(key)
        if entry is None:
            return False
        if self._has("nt_value_no_drain"):
            # BUG: non-temporal store without a drain; the value is
            # writeback-pending, not guaranteed persistent.
            memory.nt_store(
                entry.field_addr("value"), value.to_bytes(8, "little")
            )
        else:
            atomic_word_write(
                memory,
                entry.field_addr("value"),
                value,
                skip_persist=self._has("skip_persist_value"),
            )
        return True

    def remove(self, key):
        memory = self.memory
        header = self.header
        table = self._table(header)
        idx = self._bucket_of(header, key)
        prev = None
        guard = TraversalGuard("hashmap-atomic remove chain walk")
        cursor = table.get(idx)
        while cursor:
            guard.step()
            entry = AtomicEntry(memory, cursor)
            if entry.key == key:
                break
            prev = entry
            cursor = entry.next
        else:
            return False

        if not self._has("skip_dirty_set"):
            self._set_dirty(header, 1)

        entry = AtomicEntry(memory, cursor)
        successor = entry.next
        if prev is None:
            atomic_word_write(
                memory,
                table.addr_of(idx),
                successor,
                skip_persist=self._has("skip_persist_unlink"),
            )
        else:
            atomic_word_write(
                memory,
                prev.field_addr("next"),
                successor,
                skip_persist=self._has("skip_persist_unlink"),
            )

        header.count = header.count - 1
        self._persist_unless(
            "skip_persist_count_remove", header.field_addr("count"), 8
        )
        if not self._has("skip_dirty_set"):
            self._set_dirty(header, 0)
        self.pool.free(cursor)
        return True

    # ------------------------------------------------------------------
    # Reads / recovery
    # ------------------------------------------------------------------

    def _find(self, key):
        header = self.header
        table = self._table(header)
        guard = TraversalGuard("hashmap-atomic lookup chain walk")
        cursor = table.get(self._bucket_of(header, key))
        while cursor:
            guard.step()
            entry = AtomicEntry(self.memory, cursor)
            if entry.key == key:
                return entry
            cursor = entry.next
        return None

    def get(self, key):
        entry = self._find(key)
        return entry.value if entry is not None else None

    def count(self):
        return self.header.count

    def _recount(self):
        header = self.header
        table = self._table(header)
        seen = 0
        guard = TraversalGuard("hashmap-atomic count walk")
        for idx in range(header.nbuckets):
            cursor = table.get(idx)
            while cursor:
                guard.step()
                cursor = AtomicEntry(self.memory, cursor).next
                seen += 1
        return seen

    def recover(self):
        """Post-failure recovery: rebuild count if it was left dirty."""
        header = self.header
        if self._has("recovery_reads_dirty_count"):
            # BUG (post-failure stage): "log" the dirty count by reading
            # it even though count_dirty says it cannot be trusted.
            _ = header.count
        if header.count_dirty:
            header.count = self._recount()
            pmem.persist(self.memory, header.field_addr("count"), 8)
            self._set_dirty(header, 0)

    def items(self):
        header = self.header
        table = self._table(header)
        pairs = []
        guard = TraversalGuard("hashmap-atomic items walk")
        for idx in range(header.nbuckets):
            cursor = table.get(idx)
            while cursor:
                guard.step()
                entry = AtomicEntry(self.memory, cursor)
                pairs.append((entry.key, entry.value))
                cursor = entry.next
        return sorted(pairs)


class HashmapAtomicWorkload(Workload):
    """Table 4's Hashmap-Atomic as a detectable workload.

    Pre-failure performs ``test_size`` inserts, then (with at least two
    test keys) an update and a remove.  Post-failure runs the
    dirty-count recovery and resumes with a lookup and a count query.
    """

    name = "hashmap_atomic"

    FAULTS = {
        # --- cross-failure races (PMTest-suite style + new bugs) -----
        "bug1_unpersisted_create": (
            "R", "create: hash metadata persisted only at the end "
                 "(paper Bug 1)",
        ),
        "bug2_uninit_count": (
            "R", "create: count never initialized (paper Bug 2)",
        ),
        "skip_persist_entry": ("R", "insert: entry fields not persisted"),
        "skip_persist_bucket_link": (
            "R", "insert: bucket link outside the atomic-list API",
        ),
        "skip_persist_count": ("R", "insert: count not persisted"),
        "skip_persist_value": ("R", "update: value not persisted"),
        "skip_persist_unlink": (
            "R", "remove: unlink outside the atomic-list API",
        ),
        "skip_persist_count_remove": ("R", "remove: count not persisted"),
        "skip_persist_buckets_init": (
            "R", "create: bucket table zero-fill not persisted",
        ),
        "skip_persist_geometry": (
            "R", "create: nbuckets/buckets pointer not persisted",
        ),
        "unordered_link_before_entry": (
            "R", "insert: entry linked before its fields persist",
        ),
        "skip_fence_count": ("R", "insert: count flushed but no fence"),
        "nt_value_no_drain": (
            "R", "update: non-temporal store without drain",
        ),
        # --- cross-failure semantic bugs ------------------------------
        "skip_dirty_set": (
            "S", "updates never set the count_dirty commit variable",
        ),
        "early_dirty_clear": (
            "S", "count_dirty cleared before the guarded update",
        ),
        "swapped_dirty": (
            "S", "count_dirty values inverted (Figure 2 pattern)",
        ),
        "recovery_reads_dirty_count": (
            "S", "recovery reads count while count_dirty is set",
        ),
        # --- performance bugs -----------------------------------------
        "redundant_flush_entry": ("P", "insert: entry persisted twice"),
        "redundant_flush_count": ("P", "insert: count persisted twice"),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 nbuckets=DEFAULT_NBUCKETS, **options):
        super().__init__(faults, init_size, test_size, **options)
        self.nbuckets = nbuckets

    def _keys(self):
        return deterministic_keys(self.init_size + self.test_size + 1,
                                  seed=3)

    def _creates_in_pre(self):
        return bool(self.faults & CREATE_FAULTS)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "hashmap_atomic", LAYOUT, size=self.pool_size,
            root_cls=AtomicRoot,
        )
        hashmap = HashmapAtomic(pool, self.faults)
        if self._creates_in_pre():
            return
        hashmap.create(self.nbuckets)
        for key in self._keys()[: self.init_size]:
            hashmap.insert(key, key ^ 0xFF)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(
            ctx.memory, "hashmap_atomic", LAYOUT, AtomicRoot
        )
        hashmap = HashmapAtomic(pool, self.faults)
        hashmap.annotate(ctx.interface)
        if self._creates_in_pre():
            hashmap.create(self.nbuckets)
        keys = self._keys()
        test_keys = keys[self.init_size:self.init_size + self.test_size]
        for key in test_keys:
            hashmap.insert(key, key ^ 0xAB)
        if len(test_keys) >= 2:
            hashmap.update(test_keys[0], 0xDEAD)
            hashmap.remove(test_keys[1])

    def post_failure(self, ctx):
        pool = ObjectPool.open(
            ctx.memory, "hashmap_atomic", LAYOUT, AtomicRoot
        )
        hashmap = HashmapAtomic(pool, self.faults)
        hashmap.annotate(ctx.interface)
        if not hashmap.is_created():
            return
        hashmap.recover()
        # Resumption: lookups (recomputing the hash from metadata,
        # including the key whose value the pre-failure stage updated
        # in place) and a count query.
        keys = self._keys()
        hashmap.get(keys[0])
        if self.test_size:
            hashmap.get(keys[self.init_size])
        hashmap.count()
