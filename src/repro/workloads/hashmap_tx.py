"""Hashmap-TX: the transactional hashmap of PMDK's examples (Table 4).

Every update runs inside an undo-log transaction; the synthetic faults
each omit one specific ``TX_ADD`` (or move a write outside the
transaction), reproducing the PMTest-bug-suite style of injected bugs
the paper validates against (Table 5).
"""

from __future__ import annotations

from repro.pmdk import ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads._parray import PersistentPtrArray
from repro.workloads.base import (
    TraversalGuard, Workload, deterministic_keys,
)

LAYOUT = "xf-hashmap-tx"
DEFAULT_NBUCKETS = 16


class TxRoot(Struct):
    map_ptr = Ptr()


class TxHashmapHeader(Struct):
    seed = U64()
    count = U64()
    nbuckets = U64()
    buckets = Ptr()


class TxEntry(Struct):
    next = Ptr()
    key = U64()
    value = U64()


class HashmapTX:
    """Transactional hashmap operations."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, pool, nbuckets=DEFAULT_NBUCKETS, seed=7,
               faults=frozenset()):
        memory = pool.memory
        header = pool.alloc(TxHashmapHeader)
        with pool.transaction() as tx:
            tx.add_struct(header)
            header.seed = seed
            header.count = 0
            header.nbuckets = nbuckets
            table_addr = pool.alloc(8 * nbuckets, zero=True)
            header.buckets = table_addr
            table = PersistentPtrArray(memory, table_addr, nbuckets)
            tx.add(table_addr, 8 * nbuckets)  # add before writing
            table.zero_fill()
            tx.add_field(pool.root, "map_ptr")
            pool.root.map_ptr = header.address
        return cls(pool, faults)

    @property
    def header(self):
        return TxHashmapHeader(self.memory, self.pool.root.map_ptr)

    def _table(self, header):
        return PersistentPtrArray(
            self.memory, header.buckets, header.nbuckets
        )

    def _bucket_of(self, header, key):
        return (key * 2654435761 + header.seed) % header.nbuckets

    def _add(self, tx, fault, add_fn):
        """Perform a TX_ADD unless its fault flag is set."""
        if fault not in self.faults:
            add_fn(tx)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def insert(self, key, value):
        """Insert or update one key within a transaction."""
        pool = self.pool
        header = self.header
        table = self._table(header)
        idx = self._bucket_of(header, key)
        existing = self._find(header, key)
        with pool.transaction() as tx:
            if existing is not None:
                self._add(
                    tx, "skip_add_value",
                    lambda t: t.add_field(existing, "value"),
                )
                existing.value = value
                if "dup_add_count" in self.faults:
                    tx.add_field(header, "count")
                    tx.add_field(header, "count")
                return
            entry = pool.alloc(TxEntry)
            self._add(
                tx, "skip_add_entry",
                lambda t: t.add_struct(entry),
            )
            entry.key = key
            entry.value = value
            entry.next = table.get(idx)
            self._add(
                tx, "skip_add_bucket",
                lambda t: t.add(table.addr_of(idx), 8),
            )
            table.set(idx, entry.address)
            if "dup_add_count" in self.faults:
                tx.add_field(header, "count")
            if "count_outside_tx" not in self.faults:
                self._add(
                    tx, "skip_add_count",
                    lambda t: t.add_field(header, "count"),
                )
                header.count = header.count + 1
        if "count_outside_tx" in self.faults:
            # BUG: count updated outside any transaction, never flushed.
            header.count = header.count + 1

    def remove(self, key):
        """Remove one key within a transaction; returns True if found."""
        pool = self.pool
        header = self.header
        table = self._table(header)
        idx = self._bucket_of(header, key)
        prev = None
        guard = TraversalGuard("hashmap-tx remove chain walk")
        cursor = table.get(idx)
        while cursor:
            guard.step()
            entry = TxEntry(self.memory, cursor)
            if entry.key == key:
                break
            prev = entry
            cursor = entry.next
        else:
            return False
        if not cursor:
            return False
        with pool.transaction() as tx:
            entry = TxEntry(self.memory, cursor)
            if prev is None:
                self._add(
                    tx, "skip_add_bucket_remove",
                    lambda t: t.add(table.addr_of(idx), 8),
                )
                table.set(idx, entry.next)
            else:
                self._add(
                    tx, "skip_add_prev_next",
                    lambda t: t.add_field(prev, "next"),
                )
                prev.next = entry.next
            self._add(
                tx, "skip_add_count_remove",
                lambda t: t.add_field(header, "count"),
            )
            header.count = header.count - 1
            tx.free(cursor)  # TX_FREE: released at commit
        return True

    def _find(self, header, key):
        table = self._table(header)
        guard = TraversalGuard("hashmap-tx lookup chain walk")
        cursor = table.get(self._bucket_of(header, key))
        while cursor:
            guard.step()
            entry = TxEntry(self.memory, cursor)
            if entry.key == key:
                return entry
            cursor = entry.next
        return None

    def get(self, key):
        entry = self._find(self.header, key)
        return entry.value if entry is not None else None

    def count(self):
        return self.header.count

    def verify(self):
        """Walk every bucket, returning (entries seen, stored count).

        Exercised as post-failure resumption: it reads every persistent
        location the structure owns.
        """
        header = self.header
        table = self._table(header)
        seen = 0
        guard = TraversalGuard("hashmap-tx count walk")
        for idx in range(header.nbuckets):
            cursor = table.get(idx)
            while cursor:
                guard.step()
                entry = TxEntry(self.memory, cursor)
                _ = entry.key
                _ = entry.value
                cursor = entry.next
                seen += 1
        return seen, header.count

    def items(self):
        header = self.header
        table = self._table(header)
        pairs = []
        guard = TraversalGuard("hashmap-tx items walk")
        for idx in range(header.nbuckets):
            cursor = table.get(idx)
            while cursor:
                guard.step()
                entry = TxEntry(self.memory, cursor)
                pairs.append((entry.key, entry.value))
                cursor = entry.next
        return sorted(pairs)


class HashmapTxWorkload(Workload):
    """Table 4's Hashmap-TX as a detectable workload.

    Pre-failure performs ``test_size`` inserts; when at least two keys
    exist it also updates the first and removes the second, exercising
    every faultable path.  Post-failure opens the pool (recovery), walks
    the map, and resumes with one insert.
    """

    name = "hashmap_tx"

    FAULTS = {
        "skip_add_bucket": ("R", "insert: bucket head not TX_ADDed"),
        "skip_add_count": ("R", "insert: count not TX_ADDed"),
        "skip_add_entry": ("R", "insert: new entry not TX_ADDed"),
        "skip_add_value": ("R", "update: value not TX_ADDed"),
        "skip_add_bucket_remove": ("R", "remove: bucket head not added"),
        "skip_add_prev_next": ("R", "remove: predecessor not added"),
        "skip_add_count_remove": ("R", "remove: count not added"),
        "count_outside_tx": ("R", "insert: count updated outside tx"),
        "unpersisted_create_seed": (
            "R", "creation in RoI leaves seed unpersisted",
        ),
        "dup_add_count": ("P", "insert: count TX_ADDed twice"),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 nbuckets=DEFAULT_NBUCKETS, **options):
        super().__init__(faults, init_size, test_size, **options)
        self.nbuckets = nbuckets

    def _keys(self):
        return deterministic_keys(self.init_size + self.test_size + 1)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "hashmap_tx", LAYOUT, size=self.pool_size,
            root_cls=TxRoot,
        )
        if self.has_fault("unpersisted_create_seed"):
            # Creation happens in the pre-failure RoI instead.
            return
        hashmap = HashmapTX.create(
            pool, self.nbuckets, faults=self.faults
        )
        for key in self._keys()[: self.init_size]:
            hashmap.insert(key, key ^ 0xFF)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "hashmap_tx", LAYOUT, TxRoot)
        if self.has_fault("unpersisted_create_seed"):
            # BUG: seed written outside any transaction, not persisted.
            hashmap = HashmapTX.create(
                pool, self.nbuckets, faults=self.faults
            )
            hashmap.header.seed = 1234
        else:
            hashmap = HashmapTX(pool, self.faults)
        keys = self._keys()
        test_keys = keys[self.init_size:self.init_size + self.test_size]
        for key in test_keys:
            hashmap.insert(key, key ^ 0xAB)
        if len(test_keys) >= 2:
            hashmap.insert(test_keys[0], 0xDEAD)  # update path
            hashmap.remove(test_keys[1])

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "hashmap_tx", LAYOUT, TxRoot)
        hashmap = HashmapTX(pool, self.faults)
        hashmap.verify()
        resume_key = self._keys()[-1]
        hashmap.insert(resume_key, 0xBEEF)
