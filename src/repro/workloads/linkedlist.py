"""The paper's Figure 1 example: a persistent linked list.

``append`` runs inside a PMDK-style transaction and adds ``head`` to the
undo log, but — with the ``unlogged_length`` fault — forgets ``length``.
Whether that pre-failure sloppiness becomes a bug depends on the
post-failure stage:

* the **naive** recovery (paper ``recover()``) only rolls back the undo
  log and resumes with ``pop()``, which reads the inconsistent
  ``length`` — a cross-failure race, and potentially a crash (popping a
  NULL head when the incremented length happened to persist);
* the **alt** recovery (paper ``recover_alt()``) re-derives ``length``
  by traversing the list and overwrites it before resuming, so no bug
  exists — pre-failure-only tools report a false positive here
  (Section 2.1), which the baseline comparison bench demonstrates.
"""

from __future__ import annotations

from repro.pmdk import I64, ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads.base import TraversalGuard, Workload

LAYOUT = "xf-linkedlist"


class ListRoot(Struct):
    head = Ptr()
    length = U64()


class ListNode(Struct):
    next = Ptr()
    value = I64()


class PersistentList:
    """Operations on the persistent list (paper Figure 1)."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.faults = faults

    @property
    def root(self):
        return self.pool.root

    def append(self, value):
        """Push a node at the head (paper's ``append``)."""
        pool = self.pool
        root = self.root
        with pool.transaction() as tx:
            node = pool.alloc(ListNode)
            tx.add(node.address, ListNode.SIZE)
            node.value = value
            node.next = root.head
            tx.add_field(root, "head")  # paper line 4: TX_ADD(list.head)
            root.head = node.address
            if "unlogged_length" not in self.faults:
                tx.add_field(root, "length")
            root.length = root.length + 1

    def pop(self):
        """Remove the head node (paper's ``pop``)."""
        pool = self.pool
        root = self.root
        with pool.transaction() as tx:
            if root.length:
                tx.add_field(root, "head")
                head = ListNode(pool.memory, root.head)  # crashes on NULL
                root.head = head.next
                tx.add_field(root, "length")
                root.length = root.length - 1
                tx.free(head.address)  # TX_FREE: released at commit

    def recover_alt(self):
        """Paper's ``recover_alt``: re-derive length by traversal and
        overwrite the possibly-inconsistent value.  The overwrite needs
        no transaction — it is reset on every recovery."""
        root = self.root
        count = 0
        guard = TraversalGuard("linkedlist recount")
        cursor = root.head
        while cursor:
            guard.step()
            cursor = ListNode(self.pool.memory, cursor).next
            count += 1
        root.length = count
        pmem.persist(self.pool.memory, root.field_addr("length"), 8)

    def items(self):
        values = []
        guard = TraversalGuard("linkedlist items walk")
        cursor = self.root.head
        while cursor:
            guard.step()
            node = ListNode(self.pool.memory, cursor)
            values.append(node.value)
            cursor = node.next
        return values

    def length(self):
        return self.root.length


class LinkedListWorkload(Workload):
    """Figure 1 as a detectable workload.

    ``recovery="naive"`` reproduces the bug; ``recovery="alt"`` is the
    fixed version (and the baselines' false-positive witness).
    """

    name = "linkedlist"

    FAULTS = {
        "unlogged_length": (
            "R",
            "append() does not TX_ADD list.length (paper Figure 1)",
        ),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 recovery="naive", **options):
        super().__init__(faults, init_size, test_size, **options)
        if recovery not in ("naive", "alt"):
            raise ValueError(f"unknown recovery variant: {recovery!r}")
        self.recovery = recovery

    def _open(self, memory):
        pool = ObjectPool.open(memory, "linkedlist", LAYOUT, ListRoot)
        return pool, PersistentList(pool, self.faults)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "linkedlist", LAYOUT, size=self.pool_size,
            root_cls=ListRoot,
        )
        root = pool.root
        root.head = 0
        root.length = 0
        pmem.persist(ctx.memory, root.address, ListRoot.SIZE)
        plist = PersistentList(pool, self.faults)
        for value in range(self.init_size):
            plist.append(value)

    def pre_failure(self, ctx):
        _pool, plist = self._open(ctx.memory)
        for value in range(self.test_size):
            plist.append(1000 + value)

    def post_failure(self, ctx):
        # A fresh process: open the pool (undo-log recovery runs here).
        _pool, plist = self._open(ctx.memory)
        if self.recovery == "alt":
            plist.recover_alt()
        # Resume normal execution: the next operation is pop().
        plist.pop()
