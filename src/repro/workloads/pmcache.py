"""PM-Memcached: a reduction of Lenovo's PM-optimized Memcached
(Table 4).

Memcached-pmem keeps item storage in persistent memory with low-level
persists, while the LRU ordering remains volatile and is rebuilt on
restart.  We reproduce that split: persistent items chained from a
persistent hash table (with an ``item_count`` guarded by a
``count_dirty`` commit variable, the same protocol as Hashmap-Atomic),
and a volatile LRU list reconstructed in the post-failure stage.
"""

from __future__ import annotations

from repro.pmdk import Blob, Embed, ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads._parray import PersistentPtrArray, atomic_word_write
from repro.workloads.base import TraversalGuard, Workload

LAYOUT = "xf-pmcache"
DEFAULT_NBUCKETS = 32
MAX_KEY = 32
MAX_VALUE = 64


class CacheHeader(Struct):
    nbuckets = U64()
    buckets = Ptr()
    item_count = U64()
    count_dirty = U64()
    cas_counter = U64()  # monotonically increasing CAS stamp source


class CacheRoot(Struct):
    cache = Embed(CacheHeader)


class CacheItem(Struct):
    hnext = Ptr()  # hash-chain link (persistent)
    flags = U64()
    cas_id = U64()  # version stamp for compare-and-swap
    keylen = U64()
    vallen = U64()
    key = Blob(MAX_KEY)
    value = Blob(MAX_VALUE)


def _hash_bytes(data):
    value = 0xCBF29CE484222325
    for byte in data:
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class PMCache:
    """The Memcached-like cache: persistent items, volatile LRU."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults
        #: Volatile LRU order (most recent last); rebuilt on restart.
        self.lru = []

    @property
    def header(self):
        return self.pool.root.cache

    def annotate(self, interface):
        header = self.header
        name = interface.add_commit_var(
            header.field_addr("count_dirty"), 8, "cache_count_dirty"
        )
        interface.add_commit_range(name, header.field_addr("item_count"), 8)

    # ------------------------------------------------------------------
    # Construction / restart
    # ------------------------------------------------------------------

    def create(self, nbuckets=DEFAULT_NBUCKETS):
        memory = self.memory
        header = self.header
        header.item_count = 0
        header.count_dirty = 0
        header.cas_counter = 0
        pmem.persist(memory, header.field_addr("item_count"), 24)
        table_addr = self.pool.alloc(8 * nbuckets, zero=True)
        table = PersistentPtrArray(memory, table_addr, nbuckets)
        table.zero_fill()
        table.persist_all()
        header.nbuckets = nbuckets
        header.buckets = table_addr
        pmem.persist(memory, header.field_addr("nbuckets"), 16)
        return self

    def warm_restart(self):
        """Post-failure start: fix the item count if it was left dirty
        and rebuild the volatile LRU from the persistent index."""
        header = self.header
        keys = []
        for key_bytes, _item in self._iterate():
            keys.append(key_bytes)
        if header.count_dirty:
            header.item_count = len(keys)
            pmem.persist(
                self.memory, header.field_addr("item_count"), 8
            )
            header.count_dirty = 0
            pmem.persist(
                self.memory, header.field_addr("count_dirty"), 8
            )
        self.lru = keys

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def _table(self):
        header = self.header
        return PersistentPtrArray(
            self.memory, header.buckets, header.nbuckets
        )

    def _bucket_of(self, key_bytes):
        return _hash_bytes(key_bytes) % self.header.nbuckets

    def _find(self, key_bytes):
        _prev, item = self._find_with_prev(key_bytes)
        return item

    def _find_with_prev(self, key_bytes):
        table = self._table()
        prev = None
        guard = TraversalGuard("pmcache lookup chain walk")
        cursor = table.get(self._bucket_of(key_bytes))
        while cursor:
            guard.step()
            item = CacheItem(self.memory, cursor)
            if item.key[: item.keylen] == key_bytes:
                return prev, item
            prev = item
            cursor = item.hnext
        return None, None

    def set(self, key, value, flags=0):
        memory = self.memory
        header = self.header
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        value_bytes = _as_bytes(value, MAX_VALUE, "value")

        prev, existing = self._find_with_prev(key_bytes)
        if existing is not None:
            # Memcached never updates items in place: build a fresh
            # item, atomically swap it into the chain, free the old one.
            replacement = self.pool.alloc(CacheItem)
            replacement.flags = flags
            replacement.cas_id = self._next_cas_id()
            replacement.keylen = len(key_bytes)
            replacement.vallen = len(value_bytes)
            replacement.key = key_bytes
            replacement.value = value_bytes
            replacement.hnext = existing.hnext
            if "skip_persist_value" not in self.faults:
                pmem.persist(
                    memory, replacement.address, CacheItem.SIZE
                )
            slot = (
                self._table().addr_of(self._bucket_of(key_bytes))
                if prev is None
                else prev.field_addr("hnext")
            )
            atomic_word_write(memory, slot, replacement.address)
            self.pool.free(existing.address)
            self._touch_lru(key_bytes)
            return

        self._set_dirty(header, 1)
        item = self.pool.alloc(CacheItem)
        item.flags = flags
        item.cas_id = self._next_cas_id()
        item.keylen = len(key_bytes)
        item.vallen = len(value_bytes)
        item.key = key_bytes
        item.value = value_bytes
        table = self._table()
        idx = self._bucket_of(key_bytes)
        item.hnext = table.get(idx)
        if "skip_persist_item" not in self.faults:
            pmem.persist(memory, item.address, CacheItem.SIZE)
        atomic_word_write(
            memory,
            table.addr_of(idx),
            item.address,
            skip_persist="skip_persist_link" in self.faults,
        )
        header.item_count = header.item_count + 1
        pmem.persist(memory, header.field_addr("item_count"), 8)
        self._set_dirty(header, 0)
        self._touch_lru(key_bytes)

    def get(self, key):
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        item = self._find(key_bytes)
        if item is None:
            return None
        self._touch_lru(key_bytes)
        return item.value[: item.vallen]

    def gets(self, key):
        """Memcached ``gets``: value plus its CAS stamp, or None."""
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        item = self._find(key_bytes)
        if item is None:
            return None
        self._touch_lru(key_bytes)
        return item.value[: item.vallen], item.cas_id

    def cas(self, key, value, cas_id, flags=0):
        """Compare-and-swap: replace only if the item's CAS stamp still
        matches.  Returns "STORED", "EXISTS" (stamp changed), or
        "NOT_FOUND"."""
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        item = self._find(key_bytes)
        if item is None:
            return "NOT_FOUND"
        if item.cas_id != cas_id:
            return "EXISTS"
        self.set(key, value, flags)
        return "STORED"

    def touch(self, key):
        """Refresh a key's LRU position; True if present."""
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        if self._find(key_bytes) is None:
            return False
        self._touch_lru(key_bytes)
        return True

    def evict_lru(self, keep):
        """Evict least-recently-used items until at most ``keep``
        remain.  Returns the evicted keys (memcached's memory-pressure
        path, here driven explicitly)."""
        evicted = []
        while len(self.lru) > keep:
            victim = self.lru[0]
            self.delete(victim.decode())
            evicted.append(victim)
        return evicted

    def delete(self, key):
        memory = self.memory
        header = self.header
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        table = self._table()
        idx = self._bucket_of(key_bytes)
        prev = None
        guard = TraversalGuard("pmcache delete chain walk")
        cursor = table.get(idx)
        while cursor:
            guard.step()
            item = CacheItem(memory, cursor)
            if item.key[: item.keylen] == key_bytes:
                break
            prev = item
            cursor = item.hnext
        else:
            return False
        self._set_dirty(header, 1)
        item = CacheItem(memory, cursor)
        successor = item.hnext
        if prev is None:
            atomic_word_write(memory, table.addr_of(idx), successor)
        else:
            atomic_word_write(
                memory, prev.field_addr("hnext"), successor
            )
        header.item_count = header.item_count - 1
        pmem.persist(memory, header.field_addr("item_count"), 8)
        self._set_dirty(header, 0)
        self.pool.free(cursor)
        if key_bytes in self.lru:
            self.lru.remove(key_bytes)
        return True

    def stats(self):
        return {
            "item_count": self.header.item_count,
            "lru_depth": len(self.lru),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_cas_id(self):
        """Monotonic CAS stamp (persisted with the atomic-word API —
        a torn counter would hand out duplicate stamps)."""
        header = self.header
        value = header.cas_counter + 1
        atomic_word_write(
            self.memory, header.field_addr("cas_counter"), value
        )
        return value

    def _set_dirty(self, header, value):
        if "skip_dirty_set" in self.faults:
            return
        header.count_dirty = value
        pmem.persist(self.memory, header.field_addr("count_dirty"), 8)

    def _touch_lru(self, key_bytes):
        if key_bytes in self.lru:
            self.lru.remove(key_bytes)
        self.lru.append(key_bytes)

    def _iterate(self):
        header = self.header
        table = self._table()
        guard = TraversalGuard("pmcache items walk")
        for idx in range(header.nbuckets):
            cursor = table.get(idx)
            while cursor:
                guard.step()
                item = CacheItem(self.memory, cursor)
                yield bytes(item.key[: item.keylen]), item
                cursor = item.hnext


def _as_bytes(value, limit, what):
    data = value.encode() if isinstance(value, str) else bytes(value)
    if not data or len(data) > limit:
        raise ValueError(
            f"{what} must be 1..{limit} bytes, got {len(data)}"
        )
    return data


class PMCacheWorkload(Workload):
    """PM-Memcached as a detectable workload."""

    name = "memcached"

    FAULTS = {
        "skip_persist_item": ("R", "set: item fields not persisted"),
        "skip_persist_link": (
            "R", "set: hash link outside the atomic-update API",
        ),
        "skip_persist_value": ("R", "set: value overwrite not persisted"),
        "skip_dirty_set": (
            "S", "updates never set the count_dirty commit variable",
        ),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 nbuckets=DEFAULT_NBUCKETS, **options):
        super().__init__(faults, init_size, test_size, **options)
        self.nbuckets = nbuckets

    def _pairs(self, count, offset=0):
        return [
            (f"item:{i + offset}", f"payload-{i + offset}")
            for i in range(count)
        ]

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "pmcache", LAYOUT, size=self.pool_size,
            root_cls=CacheRoot,
        )
        cache = PMCache(pool, self.faults).create(self.nbuckets)
        for key, value in self._pairs(self.init_size):
            cache.set(key, value)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "pmcache", LAYOUT, CacheRoot)
        cache = PMCache(pool, self.faults)
        cache.annotate(ctx.interface)
        cache.warm_restart()
        for key, value in self._pairs(self.test_size, self.init_size):
            cache.set(key, value)
        if self.test_size >= 2:
            cache.set(f"item:{self.init_size}", "rewritten")
            cache.delete(f"item:{self.init_size + 1}")

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "pmcache", LAYOUT, CacheRoot)
        cache = PMCache(pool, self.faults)
        cache.annotate(ctx.interface)
        cache.warm_restart()
        cache.stats()
        cache.get(f"item:{self.init_size}")
        cache.set("resume", "after-restart")
