"""PM-Redis: a reduction of Intel's PM-optimized Redis (Table 4).

The paper tests Redis built on PMDK transactions; its PM core is a
persistent dictionary of string keys/values plus server bookkeeping.
We reproduce that core: ``SET``/``GET``/``DEL`` commands over a chained
hash dictionary, all updates transactional.

This is the habitat of the paper's **Bug 3** (Section 6.3.2, Figure
14c): ``initPersistentMemory`` initializes server state —
``root->num_dict_entries = 0`` and the dictionary table — *without* the
protection of any transaction.  A failure in the middle of
initialization leaves the fields volatile; the restarted server reads
them: a cross-failure race.  The ``bug3_unprotected_init`` fault
switches the stock (buggy) initialization on; the default build uses
the fixed, transactional initialization.
"""

from __future__ import annotations

from repro.pmdk import Blob, ObjectPool, Ptr, Struct, U64
from repro.workloads._parray import PersistentPtrArray
from repro.workloads._txutil import TxAdder
from repro.workloads.base import TraversalGuard, Workload

LAYOUT = "xf-pmkv"
DEFAULT_NBUCKETS = 32
MAX_KEY = 32
MAX_VALUE = 64


class KVRoot(Struct):
    initialized = U64()
    num_dict_entries = U64()
    nbuckets = U64()
    buckets = Ptr()


class KVEntry(Struct):
    next = Ptr()
    keylen = U64()
    vallen = U64()
    key = Blob(MAX_KEY)
    value = Blob(MAX_VALUE)


def _hash_bytes(data):
    value = 0xCBF29CE484222325
    for byte in data:
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class PMKVServer:
    """The Redis-like server: init + SET/GET/DEL command handlers."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    @property
    def root(self):
        return self.pool.root

    # ------------------------------------------------------------------
    # Server start (paper Figure 14c)
    # ------------------------------------------------------------------

    def init_persistent_memory(self, nbuckets=DEFAULT_NBUCKETS):
        """Initialize server state on first start.

        Stock Redis (``bug3_unprotected_init``) performs these writes
        with no crash-consistency protection; the fix wraps them in a
        transaction so an interrupted initialization rolls back.
        """
        pool = self.pool
        root = self.root
        if root.initialized:
            return
        if "bug3_unprotected_init" in self.faults:
            # BUG (paper Bug 3): plain writes, no transaction, persisted
            # only at the very end.
            table_addr = pool.alloc(8 * nbuckets, zero=True)
            table = PersistentPtrArray(self.memory, table_addr, nbuckets)
            table.zero_fill()
            root.num_dict_entries = 0
            root.nbuckets = nbuckets
            root.buckets = table_addr
            root.initialized = 1
            pool.persist(root.address, KVRoot.SIZE)
            table.persist_all()
            return
        with pool.transaction() as tx:
            tx.add(root.address, KVRoot.SIZE)
            table_addr = pool.alloc(8 * nbuckets, zero=True)
            table = PersistentPtrArray(self.memory, table_addr, nbuckets)
            table.zero_fill()
            tx.add(table_addr, 8 * nbuckets)
            root.num_dict_entries = 0
            root.nbuckets = nbuckets
            root.buckets = table_addr
            root.initialized = 1

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def _table(self):
        root = self.root
        return PersistentPtrArray(
            self.memory, root.buckets, root.nbuckets
        )

    def _bucket_of(self, key_bytes):
        return _hash_bytes(key_bytes) % self.root.nbuckets

    def _find(self, key_bytes):
        table = self._table()
        guard = TraversalGuard("pmkv lookup chain walk")
        cursor = table.get(self._bucket_of(key_bytes))
        while cursor:
            guard.step()
            entry = KVEntry(self.memory, cursor)
            if entry.key[: entry.keylen] == key_bytes:
                return entry
            cursor = entry.next
        return None

    def set(self, key, value):
        """SET key value."""
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        value_bytes = _as_bytes(value, MAX_VALUE, "value")
        pool = self.pool
        root = self.root
        existing = self._find(key_bytes)
        with pool.transaction() as tx:
            adder = TxAdder(tx, self.faults)
            if existing is not None:
                adder.add(existing, "skip_add_value_set")
                existing.vallen = len(value_bytes)
                existing.value = value_bytes
                return
            entry = pool.alloc(KVEntry)
            adder.add(entry)
            entry.keylen = len(key_bytes)
            entry.vallen = len(value_bytes)
            entry.key = key_bytes
            entry.value = value_bytes
            table = self._table()
            idx = self._bucket_of(key_bytes)
            entry.next = table.get(idx)
            adder.add_range(table.addr_of(idx), 8)
            table.set(idx, entry.address)
            adder.add_field(root, "num_dict_entries",
                            "skip_add_dict_count")
            root.num_dict_entries = root.num_dict_entries + 1

    def get(self, key):
        """GET key -> bytes or None."""
        entry = self._find(_as_bytes(key, MAX_KEY, "key"))
        if entry is None:
            return None
        return entry.value[: entry.vallen]

    def incr(self, key, delta=1):
        """INCR key: atomic read-modify-write of an integer value.

        Creates the key at ``delta`` when missing; errors when the
        stored value is not an integer, like Redis.
        """
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        existing = self._find(key_bytes)
        if existing is None:
            self.set(key, str(delta))
            return delta
        raw = existing.value[: existing.vallen]
        try:
            current = int(raw)
        except ValueError:
            raise ValueError(
                f"value of {key!r} is not an integer: {raw!r}"
            ) from None
        updated = current + delta
        with self.pool.transaction() as tx:
            tx.add_struct(existing)
            text = str(updated).encode()
            existing.vallen = len(text)
            existing.value = text
        return updated

    def append(self, key, suffix):
        """APPEND key suffix -> new length (creates missing keys)."""
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        suffix_bytes = _as_bytes(suffix, MAX_VALUE, "suffix")
        existing = self._find(key_bytes)
        if existing is None:
            self.set(key, suffix)
            return len(suffix_bytes)
        current = existing.value[: existing.vallen]
        combined = current + suffix_bytes
        if len(combined) > MAX_VALUE:
            raise ValueError(
                f"APPEND would exceed {MAX_VALUE} bytes"
            )
        with self.pool.transaction() as tx:
            tx.add_struct(existing)
            existing.vallen = len(combined)
            existing.value = combined
        return len(combined)

    def delete(self, key):
        """DEL key -> bool."""
        key_bytes = _as_bytes(key, MAX_KEY, "key")
        pool = self.pool
        root = self.root
        table = self._table()
        idx = self._bucket_of(key_bytes)
        prev = None
        guard = TraversalGuard("pmkv delete chain walk")
        cursor = table.get(idx)
        while cursor:
            guard.step()
            entry = KVEntry(self.memory, cursor)
            if entry.key[: entry.keylen] == key_bytes:
                break
            prev = entry
            cursor = entry.next
        else:
            return False
        with pool.transaction() as tx:
            adder = TxAdder(tx, self.faults)
            entry = KVEntry(self.memory, cursor)
            if prev is None:
                adder.add_range(table.addr_of(idx), 8)
                table.set(idx, entry.next)
            else:
                adder.add_field(prev, "next")
                prev.next = entry.next
            adder.add_field(root, "num_dict_entries",
                            "skip_add_dict_count")
            root.num_dict_entries = root.num_dict_entries - 1
            tx.free(cursor)  # TX_FREE: released at commit
        return True

    # ------------------------------------------------------------------
    # Introspection (INFO command analogue)
    # ------------------------------------------------------------------

    def info(self):
        return {"num_dict_entries": self.root.num_dict_entries}

    def keys(self):
        root = self.root
        table = self._table()
        found = []
        guard = TraversalGuard("pmkv keys walk")
        for idx in range(root.nbuckets):
            cursor = table.get(idx)
            while cursor:
                guard.step()
                entry = KVEntry(self.memory, cursor)
                found.append(bytes(entry.key[: entry.keylen]))
                cursor = entry.next
        return sorted(found)


def _as_bytes(value, limit, what):
    data = value.encode() if isinstance(value, str) else bytes(value)
    if not data or len(data) > limit:
        raise ValueError(
            f"{what} must be 1..{limit} bytes, got {len(data)}"
        )
    return data


class PMKVWorkload(Workload):
    """PM-Redis as a detectable workload.

    ``setup`` creates the pool; the server "starts" in the pre-failure
    stage (running initialization — where Bug 3 lives) and serves
    ``test_size`` SET commands.  The post-failure stage restarts the
    server and serves reads, exactly how a recovered Redis resumes.
    """

    name = "redis"

    FAULTS = {
        "bug3_unprotected_init": (
            "R", "initPersistentMemory without transaction "
                 "(paper Bug 3)",
        ),
        "skip_add_value_set": ("R", "SET: value overwrite not TX_ADDed"),
        "skip_add_dict_count": (
            "R", "SET/DEL: num_dict_entries not TX_ADDed",
        ),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 nbuckets=DEFAULT_NBUCKETS, **options):
        super().__init__(faults, init_size, test_size, **options)
        self.nbuckets = nbuckets

    def _pairs(self, count, offset=0):
        return [
            (f"key:{i + offset}", f"value-{i + offset}")
            for i in range(count)
        ]

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "pmkv", LAYOUT, size=self.pool_size,
            root_cls=KVRoot,
        )
        root = pool.root
        root.initialized = 0
        root.num_dict_entries = 0
        pool.persist(root.address, KVRoot.SIZE)
        if self.init_size and not self.has_fault("bug3_unprotected_init"):
            server = PMKVServer(pool, self.faults)
            server.init_persistent_memory(self.nbuckets)
            for key, value in self._pairs(self.init_size):
                server.set(key, value)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "pmkv", LAYOUT, KVRoot)
        server = PMKVServer(pool, self.faults)
        server.init_persistent_memory(self.nbuckets)
        for key, value in self._pairs(self.test_size, self.init_size):
            server.set(key, value)
        if self.test_size >= 2:
            server.set(f"key:{self.init_size}", "updated")
            server.delete(f"key:{self.init_size + 1}")

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "pmkv", LAYOUT, KVRoot)
        server = PMKVServer(pool, self.faults)
        if not pool.root.initialized:
            return
        server.info()
        server.keys()
        server.get(f"key:{self.init_size}")
        server.set("resume", "after-restart")
