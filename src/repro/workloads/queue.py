"""A persistent ring-buffer queue (PMDK's queue example pattern).

The crash-consistent idiom: the producer writes the payload slot and
persists it *before* atomically bumping ``tail``; the consumer reads a
slot and then atomically bumps ``head``.  The two cursors are 8-byte
words updated through the atomic-word API, so at any failure the queue
state is the contiguous range ``[head, tail)`` of fully persisted
slots.

The cursors are annotated as commit variables: recovery reads them to
find the valid window (benign cross-failure races), and each versions
only itself — the slots' validity is positional.
"""

from __future__ import annotations

from repro.pmdk import I64, ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads._parray import atomic_word_write
from repro.workloads.base import Workload

LAYOUT = "xf-queue"
DEFAULT_CAPACITY = 16


class QueueRoot(Struct):
    capacity = U64()
    head = U64()  # next slot to dequeue
    tail = U64()  # next slot to enqueue
    slots = Ptr()  # -> capacity * i64


class QueueFullError(Exception):
    pass


class PersistentQueue:
    """FIFO operations over the persistent ring buffer."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    @property
    def root(self):
        return self.pool.root

    def annotate(self, interface):
        root = self.root
        for cursor in ("head", "tail"):
            name = interface.add_commit_var(
                root.field_addr(cursor), 8, f"queue_{cursor}"
            )
            interface.add_commit_range(
                name, root.field_addr(cursor), 8
            )

    def create(self, capacity=DEFAULT_CAPACITY):
        memory = self.memory
        root = self.root
        root.capacity = capacity
        root.head = 0
        root.tail = 0
        slots_addr = self.pool.alloc(8 * capacity, zero=True)
        memory.store(slots_addr, bytes(8 * capacity))
        pmem.persist(memory, slots_addr, 8 * capacity)
        root.slots = slots_addr
        pmem.persist(memory, root.address, QueueRoot.SIZE)
        return self

    def _slot_addr(self, index):
        root = self.root
        return root.slots + 8 * (index % root.capacity)

    def size(self):
        root = self.root
        return root.tail - root.head

    def enqueue(self, value):
        memory = self.memory
        root = self.root
        tail = root.tail
        if tail - root.head >= root.capacity:
            raise QueueFullError(f"queue full at {root.capacity}")
        slot = self._slot_addr(tail)

        if "tail_before_slot" in self.faults:
            # BUG: publish the slot before its payload is durable.
            atomic_word_write(
                memory, root.field_addr("tail"), tail + 1
            )
            memory.store(slot, int(value).to_bytes(8, "little",
                                                   signed=True))
            pmem.persist(memory, slot, 8)
            return

        memory.store(slot, int(value).to_bytes(8, "little", signed=True))
        if "skip_persist_slot" not in self.faults:
            pmem.persist(memory, slot, 8)
        if "double_flush_slot" in self.faults:
            pmem.persist(memory, slot, 8)
        atomic_word_write(memory, root.field_addr("tail"), tail + 1)

    def dequeue(self):
        memory = self.memory
        root = self.root
        head = root.head
        if head == root.tail:
            return None
        raw = memory.load(self._slot_addr(head), 8)
        value = int.from_bytes(raw, "little", signed=True)
        atomic_word_write(memory, root.field_addr("head"), head + 1)
        return value

    def peek_all(self):
        """Every value currently in the queue, oldest first."""
        memory = self.memory
        root = self.root
        values = []
        for index in range(root.head, root.tail):
            raw = memory.load(self._slot_addr(index), 8)
            values.append(int.from_bytes(raw, "little", signed=True))
        return values


class QueueWorkload(Workload):
    """The ring-buffer queue as a detectable workload."""

    name = "queue"

    FAULTS = {
        "tail_before_slot": (
            "R", "enqueue: tail published before the slot persisted",
        ),
        "skip_persist_slot": (
            "R", "enqueue: payload slot never persisted",
        ),
        "double_flush_slot": ("P", "enqueue: slot persisted twice"),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 capacity=DEFAULT_CAPACITY, **options):
        super().__init__(faults, init_size, test_size, **options)
        self.capacity = capacity

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "queue", LAYOUT, size=self.pool_size,
            root_cls=QueueRoot,
        )
        queue = PersistentQueue(pool, self.faults).create(self.capacity)
        for value in range(self.init_size):
            queue.enqueue(value)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "queue", LAYOUT, QueueRoot)
        queue = PersistentQueue(pool, self.faults)
        queue.annotate(ctx.interface)
        for value in range(self.test_size):
            queue.enqueue(100 + value)
        if self.init_size:
            queue.dequeue()

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "queue", LAYOUT, QueueRoot)
        queue = PersistentQueue(pool, self.faults)
        queue.annotate(ctx.interface)
        # Recovery: the [head, tail) window is the valid queue; drain
        # it, then resume producing.
        queue.peek_all()
        queue.dequeue()
        queue.enqueue(999)
