"""RB-Tree: the transactional red-black tree of PMDK's examples
(Table 4).

A classic red-black insertion (recolor + rotations) with persistent
parent pointers, every mutation inside an undo-log transaction.  The
synthetic faults each omit the ``TX_ADD`` of one specific node role in
the fix-up procedure, which exercises the detector on multi-object
transactional updates (a rotation touches three nodes plus possibly the
root pointer).
"""

from __future__ import annotations

from repro.pmdk import ObjectPool, Ptr, Struct, U64, pmem
from repro.workloads._txutil import NullAdder, TxAdder
from repro.workloads.base import (
    TraversalGuard, Workload, deterministic_keys,
)

LAYOUT = "xf-rbtree"

RED = 0
BLACK = 1


class RBNode(Struct):
    parent = Ptr()
    left = Ptr()
    right = Ptr()
    color = U64()
    key = U64()
    value = U64()


class RBRoot(Struct):
    root_ptr = Ptr()
    count = U64()


class RBTree:
    """Persistent red-black tree operations (insert, lookup, walk)."""

    def __init__(self, pool, faults=frozenset()):
        self.pool = pool
        self.memory = pool.memory
        self.faults = faults

    @property
    def root(self):
        return self.pool.root

    def _node(self, address):
        return RBNode(self.memory, address)

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key, value):
        pool = self.pool
        root = self.root
        with pool.transaction() as tx:
            adder = TxAdder(tx, self.faults)
            if "dup_add_node" in self.faults:
                adder.force_duplicate(root)
            # Standard BST descent.
            parent = None
            guard = TraversalGuard("rbtree insert descent")
            cursor = root.root_ptr
            while cursor:
                guard.step()
                node = self._node(cursor)
                if key == node.key:
                    adder.add(node, "skip_add_update_value")
                    node.value = value
                    return
                parent = node
                cursor = node.left if key < node.key else node.right
            fresh = pool.alloc(RBNode)
            adder.add(fresh, "skip_add_new_node")
            fresh.key = key
            fresh.value = value
            fresh.left = 0
            fresh.right = 0
            fresh.color = RED
            fresh.parent = parent.address if parent else 0
            if parent is None:
                adder.add_field(root, "root_ptr", "skip_add_root_update")
                root.root_ptr = fresh.address
            else:
                adder.add(parent, "skip_add_link_parent")
                if key < parent.key:
                    parent.left = fresh.address
                else:
                    parent.right = fresh.address
            adder.add_field(root, "count", "skip_add_count")
            root.count = root.count + 1
            if "skip_fixup_adds" in self.faults:
                # BUG: the entire fix-up procedure logs nothing.
                self._fixup(NullAdder(), fresh)
            else:
                self._fixup(adder, fresh)
        if "value_outside_tx" in self.faults:
            # BUG: a raw value write after the transaction ended.
            fresh_view = self._node(fresh.address)
            self.memory.store(
                fresh_view.field_addr("value"),
                int(value).to_bytes(8, "little"),
            )

    def _fixup(self, adder, node):
        """Restore red-black invariants after inserting ``node``."""
        root = self.root
        guard = TraversalGuard("rbtree fixup climb")
        while node.parent:
            guard.step()
            parent = self._node(node.parent)
            if parent.color != RED:
                break
            grand = self._node(parent.parent)
            parent_is_left = grand.left == parent.address
            uncle_ptr = grand.right if parent_is_left else grand.left
            uncle = self._node(uncle_ptr) if uncle_ptr else None
            if uncle is not None and uncle.color == RED:
                # Case 1: recolor and continue from the grandparent.
                adder.add(parent, "skip_add_recolor_parent")
                parent.color = BLACK
                adder.add(uncle, "skip_add_recolor_uncle")
                uncle.color = BLACK
                adder.add(grand, "skip_add_recolor_grand")
                grand.color = RED
                node = grand
                continue
            # Cases 2/3: rotations.
            node_is_left = parent.left == node.address
            if parent_is_left and not node_is_left:
                self._rotate_left(adder, parent)
                # The old parent is now the lower node of the pair.
                node = parent
                parent = self._node(node.parent)
            elif not parent_is_left and node_is_left:
                self._rotate_right(adder, parent)
                node = parent
                parent = self._node(node.parent)
            adder.add(parent, "skip_add_recolor_parent")
            parent.color = BLACK
            adder.add(grand, "skip_add_recolor_grand")
            grand.color = RED
            if parent_is_left:
                self._rotate_right(adder, grand)
            else:
                self._rotate_left(adder, grand)
        root_node = self._node(root.root_ptr)
        if root_node.color != BLACK:
            adder.add(root_node, "skip_add_recolor_grand")
            root_node.color = BLACK

    def _rotate_left(self, adder, pivot):
        """Left-rotate around ``pivot``: its right child takes its
        place."""
        child = self._node(pivot.right)
        adder.add(pivot, "skip_add_rotate_pivot")
        adder.add(child, "skip_add_rotate_child")
        pivot.right = child.left
        if child.left:
            inner = self._node(child.left)
            adder.add(inner, "skip_add_rotate_child")
            inner.parent = pivot.address
        self._replace_in_parent(adder, pivot, child)
        child.left = pivot.address
        pivot.parent = child.address

    def _rotate_right(self, adder, pivot):
        child = self._node(pivot.left)
        adder.add(pivot, "skip_add_rotate_pivot")
        adder.add(child, "skip_add_rotate_child")
        pivot.left = child.right
        if child.right:
            inner = self._node(child.right)
            adder.add(inner, "skip_add_rotate_child")
            inner.parent = pivot.address
        self._replace_in_parent(adder, pivot, child)
        child.right = pivot.address
        pivot.parent = child.address

    def _replace_in_parent(self, adder, old, new):
        root = self.root
        new.parent = old.parent
        if old.parent == 0:
            adder.add_field(root, "root_ptr", "skip_add_root_update")
            root.root_ptr = new.address
            return
        parent = self._node(old.parent)
        adder.add(parent, "skip_add_link_parent")
        if parent.left == old.address:
            parent.left = new.address
        else:
            parent.right = new.address

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key):
        guard = TraversalGuard("rbtree lookup descent")
        cursor = self.root.root_ptr
        while cursor:
            guard.step()
            node = self._node(cursor)
            if key == node.key:
                return node.value
            cursor = node.left if key < node.key else node.right
        return None

    def items(self):
        pairs = []
        if self.root.root_ptr:
            self._walk(self.root.root_ptr, pairs)
        return pairs

    def _walk(self, pointer, pairs):
        node = self._node(pointer)
        if node.left:
            self._walk(node.left, pairs)
        pairs.append((node.key, node.value))
        if node.right:
            self._walk(node.right, pairs)

    def count(self):
        return self.root.count

    def audit(self):
        """Read every persistent field of every node (including colors
        and parent links), the way a recovery-time validator would.
        Returns the number of nodes visited."""
        visited = 0
        stack = [self.root.root_ptr] if self.root.root_ptr else []
        while stack:
            node = self._node(stack.pop())
            _ = (node.key, node.value, node.color, node.parent)
            visited += 1
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        return visited

    def check(self):
        """Red-black invariants: BST order, root black, no red-red
        edges, equal black heights."""
        pairs = self.items()
        keys = [key for key, _value in pairs]
        assert keys == sorted(keys), "BST order violated"
        pointer = self.root.root_ptr
        if pointer == 0:
            return True
        root_node = self._node(pointer)
        assert root_node.color == BLACK, "root must be black"
        self._check_subtree(pointer)
        return True

    def _check_subtree(self, pointer):
        """Returns the black height; asserts invariants."""
        if pointer == 0:
            return 1
        node = self._node(pointer)
        if node.color == RED:
            for child_ptr in (node.left, node.right):
                if child_ptr:
                    assert self._node(child_ptr).color == BLACK, (
                        "red node with red child"
                    )
        left_height = self._check_subtree(node.left)
        right_height = self._check_subtree(node.right)
        assert left_height == right_height, "black height mismatch"
        return left_height + (1 if node.color == BLACK else 0)


class RBTreeWorkload(Workload):
    """Table 4's RB-Tree as a detectable workload.

    Keys are inserted in ascending order by default so that rotations
    and recolorings deterministically occur for small test sizes.
    """

    name = "rbtree"

    FAULTS = {
        "skip_add_new_node": ("R", "insert: new node not TX_ADDed"),
        "skip_add_link_parent": (
            "R", "insert/rotate: parent link not TX_ADDed",
        ),
        "skip_add_recolor_parent": (
            "R", "fixup: recolored parent not TX_ADDed",
        ),
        "skip_add_recolor_uncle": (
            "R", "fixup: recolored uncle not TX_ADDed",
        ),
        "skip_add_recolor_grand": (
            "R", "fixup: recolored grandparent not TX_ADDed",
        ),
        # Note: rotation pivot/child nodes are always already logged by
        # the link or recolor that preceded the rotation, so "skip the
        # rotation add" is not a distinct reachable bug; the umbrella
        # skip_fixup_adds below covers unlogged rotations instead.
        "skip_fixup_adds": (
            "R", "fixup: the entire fix-up procedure logs nothing",
        ),
        "value_outside_tx": (
            "R", "insert: raw value write after the transaction ended",
        ),
        "skip_add_root_update": (
            "R", "rotation: root pointer not TX_ADDed",
        ),
        "skip_add_count": ("R", "insert: count not TX_ADDed"),
        "skip_add_update_value": ("R", "update: value not TX_ADDed"),
        "dup_add_node": ("P", "insert: root struct TX_ADDed twice"),
    }

    def __init__(self, faults=(), init_size=0, test_size=1,
                 ascending=True, **options):
        super().__init__(faults, init_size, test_size, **options)
        self.ascending = ascending

    def _keys(self):
        total = self.init_size + self.test_size + 1
        if self.ascending:
            return list(range(1, total + 1))
        return deterministic_keys(total, seed=13)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "rbtree", LAYOUT, size=self.pool_size,
            root_cls=RBRoot,
        )
        root = pool.root
        root.root_ptr = 0
        root.count = 0
        pmem.persist(ctx.memory, root.address, RBRoot.SIZE)
        tree = RBTree(pool, self.faults)
        for key in self._keys()[: self.init_size]:
            tree.insert(key, key ^ 0xFF)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "rbtree", LAYOUT, RBRoot)
        tree = RBTree(pool, self.faults)
        keys = self._keys()
        test_keys = keys[self.init_size:self.init_size + self.test_size]
        for key in test_keys:
            tree.insert(key, key ^ 0xAB)
        if test_keys:
            tree.insert(test_keys[0], 0xDEAD)  # update path

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "rbtree", LAYOUT, RBRoot)
        tree = RBTree(pool, self.faults)
        tree.audit()
        tree.count()
        tree.insert(self._keys()[-1], 0xBEEF)
