"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.trace.recorder import TraceRecorder


@pytest.fixture
def memory():
    """A fresh PM runtime with a pre-stage recorder."""
    return PersistentMemory(TraceRecorder("pre"), capture_ips=True)


@pytest.fixture
def pool(memory):
    """A 1 MiB raw pool mapped at the standard hint address."""
    return memory.map_pool(PMPool("test", size=1 << 20))


@pytest.fixture
def detector():
    return XFDetector(DetectorConfig())


@pytest.fixture
def config():
    return DetectorConfig()
