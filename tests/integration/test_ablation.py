"""Ablations of the detector's design knobs (DetectorConfig)."""

from repro.core import BugKind, DetectorConfig, XFDetector
from repro.pm.image import CrashImageMode
from repro.workloads import HashmapAtomicWorkload, LinkedListWorkload


def naive_list(**kwargs):
    return LinkedListWorkload(
        recovery="naive", init_size=2, test_size=1,
        faults={"unlogged_length"}, **kwargs,
    )


class TestTrustAllocatorZeroing:
    def test_trusting_zeroing_hides_bug2(self):
        workload = HashmapAtomicWorkload(
            faults={"bug2_uninit_count"}, test_size=1
        )
        strict = XFDetector(DetectorConfig()).run(workload)
        assert any(
            "never-initialized" in bug.detail for bug in strict.races
        )
        trusting = XFDetector(
            DetectorConfig(trust_allocator_zeroing=True)
        ).run(
            HashmapAtomicWorkload(
                faults={"bug2_uninit_count"}, test_size=1
            )
        )
        assert not any(
            "never-initialized" in bug.detail
            for bug in trusting.races
        )


class TestFirstReadOnly:
    def test_disabling_dedup_reports_more_occurrences(self):
        with_opt = XFDetector(DetectorConfig()).run(naive_list())
        without_opt = XFDetector(
            DetectorConfig(first_read_only=False)
        ).run(naive_list())
        # Same distinct bugs, at least as many raw occurrences.
        assert (
            {b.dedup_key() for b in with_opt.races}
            == {b.dedup_key() for b in without_opt.races}
        )
        assert len(without_opt.bugs) >= len(with_opt.bugs)


class TestFailurePointBudget:
    def test_max_failure_points_caps_post_runs(self):
        capped = XFDetector(
            DetectorConfig(max_failure_points=2)
        ).run(naive_list())
        full = XFDetector(DetectorConfig()).run(naive_list())
        assert capped.stats.failure_points == 2
        assert full.stats.failure_points > 2

    def test_skip_empty_optimization_reduces_failure_points(self):
        from repro.workloads import ArrayBackupWorkload

        optimized = XFDetector(DetectorConfig()).run(
            ArrayBackupWorkload(test_size=3)
        )
        exhaustive = XFDetector(
            DetectorConfig(skip_empty_failure_points=False)
        ).run(ArrayBackupWorkload(test_size=3))
        assert (
            exhaustive.stats.failure_points
            >= optimized.stats.failure_points
        )


class TestCrashImageModes:
    def test_detection_agrees_across_modes_for_figure1(self):
        """The shadow-PM-based classification does not depend on the
        image contents; both modes find the race."""
        as_written = XFDetector(DetectorConfig()).run(naive_list())
        strict = XFDetector(
            DetectorConfig(
                crash_image_mode=CrashImageMode.PERSISTED_ONLY
            )
        ).run(naive_list())
        assert as_written.races and strict.races

    def test_strict_mode_needed_for_pool_creation_crash(self):
        """Bug 4: the pool-open failure needs failure injection; in
        both modes the half-created pool cannot validate (checksum is
        written last), so the crash is observable — but the strict mode
        is the faithful one and must certainly produce it."""
        from repro.bugsuite.newbugs import PoolCreationWorkload

        strict = XFDetector(
            DetectorConfig(
                crash_image_mode=CrashImageMode.PERSISTED_ONLY
            )
        ).run(PoolCreationWorkload())
        assert strict.crashes


class TestFailFast:
    def test_fail_fast_stops_at_first_bug(self):
        full = XFDetector(DetectorConfig()).run(naive_list())
        fast = XFDetector(DetectorConfig(fail_fast=True)).run(
            naive_list()
        )
        cross = [
            b for b in fast.bugs
            if b.kind in (BugKind.CROSS_FAILURE_RACE,
                          BugKind.CROSS_FAILURE_SEMANTIC)
        ]
        assert len(cross) == 1
        assert len(full.bugs) >= len(fast.bugs)
