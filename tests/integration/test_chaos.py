"""Chaos self-test: the resilience layer under injected harness faults.

``XFD_CHAOS``-style fault injection (worker crashes, hangs) plus a
deterministic harness exception must never abort a run or corrupt the
outcomes of unaffected failure points: completed points stay
byte-identical to a fault-free run, absorbed faults surface as typed
incidents, and the report's ``degraded`` flag is true exactly when an
outcome was lost.
"""

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.errors import HarnessError
from repro.pm.snapshot import SnapshotStore
from repro.resilience import IncidentKind
from repro.workloads import HashmapAtomicWorkload
from repro.workloads.base import Workload


def _workload():
    return HashmapAtomicWorkload(
        faults={"skip_persist_count"}, test_size=3
    )


def _run(**config_kwargs):
    config = DetectorConfig(retry_backoff=0.0, **config_kwargs)
    return XFDetector(config).run(_workload())


def _break_image_access(monkeypatch, broken_fid):
    """Make every crash-image access path for ``broken_fid`` raise a
    deterministic harness fault — ``materialize`` for the legacy copy
    path and ``deltas`` for the memoized one."""
    originals = {
        name: getattr(SnapshotStore, name)
        for name in ("materialize", "deltas")
    }

    def flaky(name):
        def accessor(self, fid):
            if fid == broken_fid:
                raise HarnessError(
                    "snapshot store corrupted", phase="post_exec"
                )
            return originals[name](self, fid)

        return accessor

    for name in originals:
        monkeypatch.setattr(SnapshotStore, name, flaky(name))


def _bugs_by_point(report):
    """(failure_point -> bug dict list), timings-free."""
    by_point = {}
    for bug in report.to_dict(unique=False)["bugs"]:
        by_point.setdefault(bug["failure_point"], []).append(bug)
    return by_point


@pytest.fixture(scope="module")
def baseline():
    """The fault-free reference report."""
    return _run()


class TestChaosCrash:
    def test_transient_crashes_heal_and_reports_match(self, baseline):
        """Injected worker crashes retry on fresh rolls; with retry
        budget left, every point completes and the bug list is
        byte-identical to the fault-free run's."""
        report = _run(chaos="crash:0.2", max_retries=6)
        incidents = report.incidents
        assert incidents, "crash:0.2 should fire at least once"
        assert all(
            i.kind is IncidentKind.WORKER_DEATH for i in incidents
        )
        assert not report.degraded
        assert _bugs_by_point(report) == _bugs_by_point(baseline)
        assert (
            report.stats.post_runs_analyzed
            == baseline.stats.post_runs_analyzed
        )

    def test_chaos_rolls_match_across_executors(self, baseline):
        """Chaos decisions hash task coordinates, not scheduling: the
        serial and thread schedules roll identical faults and produce
        identical reports."""
        serial = _run(chaos="crash:0.2", max_retries=6)
        threaded = _run(
            chaos="crash:0.2", max_retries=6, jobs=4, executor="thread"
        )
        assert (
            [i.to_dict() for i in serial.incidents]
            == [i.to_dict() for i in threaded.incidents]
        )
        assert _bugs_by_point(serial) == _bugs_by_point(threaded)

    def test_exhausted_retries_quarantine_not_abort(self, baseline):
        """With no retry budget, crashed points are quarantined while
        every unaffected point still reports byte-identically."""
        report = _run(chaos="crash:0.2", max_retries=0)
        assert report.degraded
        quarantined = {
            incident.failure_point
            for incident in report.incidents
            if incident.quarantined
        }
        assert quarantined, "at least one point should be lost"
        expected = {
            fid: bugs
            for fid, bugs in _bugs_by_point(baseline).items()
            if fid not in quarantined
        }
        actual = {
            fid: bugs
            for fid, bugs in _bugs_by_point(report).items()
            if fid not in quarantined
        }
        assert actual == expected
        assert "DEGRADED" in report.summary()


class LivelockedRecovery(HashmapAtomicWorkload):
    """Recovery spins forever re-reading PM — the livelock a corrupted
    crash image can produce, caught by the cooperative deadline."""

    name = "livelocked_recovery"

    def post_failure(self, ctx):
        base = ctx.memory.pools[0].base
        while True:  # every load ticks the attached Deadline
            ctx.memory.load(base, 8)


class TestHangDetection:
    def test_livelocked_recovery_becomes_hang_incidents(self):
        config = DetectorConfig(
            exec_deadline=0.1, max_failure_points=2, retry_backoff=0.0
        )
        report = XFDetector(config).run(
            LivelockedRecovery(
                faults={"skip_persist_count"}, test_size=2
            )
        )
        assert report.degraded
        assert report.incidents
        assert all(
            i.kind is IncidentKind.HANG and i.quarantined
            for i in report.incidents
        )
        # A hang is an incident, never a finding.
        assert not report.crashes

    def test_step_budget_catches_hangs_without_a_clock(self):
        config = DetectorConfig(
            exec_step_budget=10_000, max_failure_points=2,
            retry_backoff=0.0,
        )
        report = XFDetector(config).run(
            LivelockedRecovery(
                faults={"skip_persist_count"}, test_size=2
            )
        )
        assert report.incidents
        assert all(
            i.kind is IncidentKind.HANG for i in report.incidents
        )
        assert any(
            "step budget" in i.detail for i in report.incidents
        )


class TestHarnessErrorQuarantine:
    def test_harness_fault_is_an_incident_not_a_finding(
        self, baseline, monkeypatch
    ):
        """A pipeline failure for one failure point quarantines that
        point; the other points' findings are untouched and nothing
        masquerades as a POST_FAILURE_CRASH bug."""
        broken_fid = 1
        _break_image_access(monkeypatch, broken_fid)
        report = _run(max_retries=2)
        assert report.degraded
        incidents = report.incidents
        assert len(incidents) == 1
        assert incidents[0].kind is IncidentKind.HARNESS_ERROR
        assert incidents[0].failure_point == broken_fid
        assert incidents[0].quarantined
        # Deterministic fault: quarantined on the first attempt, no
        # retry burned.
        assert incidents[0].attempts == 1
        expected = {
            fid: bugs
            for fid, bugs in _bugs_by_point(baseline).items()
            if fid != broken_fid
        }
        assert _bugs_by_point(report) == expected
        assert not any(
            "snapshot store corrupted" in bug.detail
            for bug in report.bugs
        )


class TestCombinedAcceptance:
    def test_crash_hang_and_harness_fault_in_one_run(
        self, baseline, monkeypatch
    ):
        """The issue's acceptance scenario: one run absorbing a worker
        crash, a hang, and a deterministic harness exception finishes
        with all three incident kinds, ``degraded: true``, and every
        unaffected point byte-identical to the fault-free run."""
        broken_fid = 2
        _break_image_access(monkeypatch, broken_fid)
        report = _run(
            chaos="crash:0.1,hang:0.04",
            exec_deadline=0.1,
            max_retries=0,
        )
        kinds = {incident.kind for incident in report.incidents}
        assert kinds == {
            IncidentKind.WORKER_DEATH,
            IncidentKind.HANG,
            IncidentKind.HARNESS_ERROR,
        }
        assert report.degraded
        assert report.to_dict()["degraded"] is True
        lost = {
            incident.failure_point
            for incident in report.incidents
            if incident.quarantined
        }
        expected = {
            fid: bugs
            for fid, bugs in _bugs_by_point(baseline).items()
            if fid not in lost
        }
        actual = {
            fid: bugs
            for fid, bugs in _bugs_by_point(report).items()
            if fid not in lost
        }
        assert actual == expected


class TestFaultFreeRunsAreUntouched:
    def test_no_incidents_without_faults(self, baseline):
        """The resilience layer is zero-cost and invisible when
        nothing goes wrong — the determinism suite depends on it."""
        assert baseline.incidents == []
        assert not baseline.degraded
        assert baseline.to_dict()["incidents"] == []
        assert "DEGRADED" not in baseline.summary()
