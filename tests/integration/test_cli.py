"""Tests for the command-line runner."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_clean_workload_exits_zero(self, capsys):
        code = main(["run", "linkedlist", "--init", "1", "--test", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no bugs" in out
        assert "failure points" in out

    def test_run_buggy_workload_exits_nonzero(self, capsys):
        code = main([
            "run", "linkedlist", "--init", "2", "--test", "1",
            "--fault", "unlogged_length",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "cross-failure race" in out

    def test_run_with_strict_image_and_cap(self, capsys):
        code = main([
            "run", "array_backup", "--test", "1", "--strict-image",
            "--max-failure-points", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 failure points" in out

    def test_all_occurrences_flag(self, capsys):
        main([
            "run", "linkedlist", "--init", "2", "--test", "2",
            "--fault", "unlogged_length", "--all-occurrences",
        ])
        out = capsys.readouterr().out
        assert out.count("cross-failure race") >= 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch"])

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            main(["run", "btree", "--fault", "nosuch"])


class TestInformational:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("btree", "redis", "memcached"):
            assert name in out

    def test_list_faults(self, capsys):
        assert main(["list-faults", "hashmap_atomic"]) == 0
        out = capsys.readouterr().out
        assert "bug1_unpersisted_create" in out
        assert "[S]" in out and "[R]" in out and "[P]" in out

    def test_list_faults_empty(self, capsys):
        from repro.bugsuite.newbugs import PoolCreationWorkload  # noqa

        # array_backup has one flag; pick a workload with none? All
        # registered workloads have flags, so just verify formatting.
        assert main(["list-faults", "array_backup"]) == 0
        assert "swapped_valid" in capsys.readouterr().out


class TestSuiteAndNewBugs:
    def test_new_bugs_all_detected(self, capsys):
        assert main(["new-bugs"]) == 0
        out = capsys.readouterr().out
        assert out.count("DETECTED") == 4

    def test_suite_subset(self, capsys):
        assert main(["suite", "--workload", "ctree"]) == 0
        out = capsys.readouterr().out
        assert "detected 7/7" in out
