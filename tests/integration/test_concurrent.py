"""Tests for multithreaded workloads (paper Section 7)."""

import pytest

from repro.core import BugKind, DetectorConfig, XFDetector
from repro.core.frontend import Frontend
from repro.pm.image import CrashImageMode
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.trace.recorder import TraceRecorder
from repro.workloads.concurrent import (
    ConcurrentHashmapWorkload,
    client_states,
)


class TestConcurrentDetection:
    def test_correct_concurrent_workload_clean(self):
        workload = ConcurrentHashmapWorkload(clients=3, test_size=2)
        report = XFDetector(DetectorConfig()).run(workload)
        assert report.bugs == [], report.format()
        assert report.stats.failure_points > 0

    def test_faulty_concurrent_workload_detected(self):
        workload = ConcurrentHashmapWorkload(
            clients=3, test_size=2, faults={"skip_add_count"},
        )
        report = XFDetector(DetectorConfig()).run(workload)
        assert any(
            bug.kind is BugKind.CROSS_FAILURE_RACE
            for bug in report.bugs
        ), report.format()

    def test_client_errors_surface(self):
        workload = ConcurrentHashmapWorkload(clients=2, test_size=1)

        def broken(ctx, client, errors):
            errors.append((client, ValueError("boom")))

        workload._client_body = broken
        with pytest.raises(RuntimeError):
            XFDetector(DetectorConfig()).run(workload)

    def test_invalid_client_count_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentHashmapWorkload(clients=0)


class TestConcurrentAtomicity:
    def test_every_failure_point_is_per_client_consistent(self):
        """At any failure point, every client's pool independently
        recovers to a prefix of that client's inserts — transactions
        of different threads never bleed into each other."""
        workload = ConcurrentHashmapWorkload(clients=3, test_size=3)
        result = Frontend(DetectorConfig()).run(workload)
        assert result.failure_points
        for failure_point in result.failure_points[::2]:
            memory = PersistentMemory(
                TraceRecorder("post"), capture_ips=False
            )
            for image in failure_point.images:
                memory.map_pool(PMPool(
                    image.pool_name, image.size, image.base,
                    data=image.bytes_for(
                        CrashImageMode.PERSISTED_ONLY
                    ),
                ))
            states = client_states(memory, workload)
            for client, items in enumerate(states):
                keys = workload._keys(client)[workload.init_size:]
                prefixes = [
                    sorted((key, key ^ 0xAB) for key in keys[:k])
                    for k in range(len(keys) + 1)
                ]
                assert items in prefixes, (
                    f"fp#{failure_point.fid} client {client}: {items}"
                )
