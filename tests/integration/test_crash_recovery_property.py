"""The strong crash-consistency property, checked end-to-end.

For a *correct* transactional workload, take the crash image at every
injected failure point, open it in a fresh runtime (running recovery),
and check that the recovered structure equals the state after some
prefix of the completed operations — i.e. every transaction is all or
nothing, at every possible failure.

This is the semantic ground truth behind the detector: if this property
held nowhere, a clean detector report would be meaningless.
"""

import pytest

from repro.core import DetectorConfig
from repro.core.frontend import Frontend
from repro.pm.image import CrashImageMode
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.pmdk import ObjectPool
from repro.trace.recorder import TraceRecorder
from repro.workloads.hashmap_tx import HashmapTX, LAYOUT as HT_LAYOUT, TxRoot
from repro.workloads.linkedlist import (
    LAYOUT as LL_LAYOUT,
    ListRoot,
    PersistentList,
)


def open_image(image, mode):
    memory = PersistentMemory(TraceRecorder("post"), capture_ips=False)
    memory.map_pool(
        PMPool(image.pool_name, image.size, image.base,
               data=image.bytes_for(mode))
    )
    return memory


class TestTreeAtomicity:
    """Crash the tree workloads at every failure point; the recovered
    structure must equal the state after some prefix of the completed
    operations and keep its own invariants."""

    def _model_states(self, ops):
        """Dict snapshots after each prefix of (op, key, value) ops."""
        states = [{}]
        model = {}
        for op, key, value in ops:
            if op == "insert":
                model[key] = value
            else:
                model.pop(key, None)
            states.append(dict(model))
        return [sorted(s.items()) for s in states]

    @pytest.mark.parametrize(
        "name", ["btree", "ctree", "rbtree"],
    )
    def test_tree_recovers_to_an_operation_prefix(self, name):
        from repro.workloads import MICROBENCHMARKS

        cls = MICROBENCHMARKS[name]
        workload = cls(init_size=0, test_size=5)
        keys = workload._keys()[:5]
        ops = [("insert", key, key ^ 0xAB) for key in keys]
        # pre_failure also runs one update (all trees) and, for btree
        # and ctree, one remove.
        ops.append(("insert", keys[0], 0xDEAD))
        if name in ("btree", "ctree"):
            ops.append(("remove", keys[1], None))
        valid_states = self._model_states(ops)

        result = Frontend(DetectorConfig()).run(workload)
        assert result.failure_points
        for failure_point in result.failure_points:
            memory = open_image(
                failure_point.images[0], CrashImageMode.PERSISTED_ONLY
            )
            import repro.workloads.btree as bt
            import repro.workloads.ctree as ct
            import repro.workloads.rbtree as rt

            module = {"btree": bt, "ctree": ct, "rbtree": rt}[name]
            root_cls = {
                "btree": bt.BTreeRoot,
                "ctree": ct.CTreeRoot,
                "rbtree": rt.RBRoot,
            }[name]
            tree_cls = {
                "btree": bt.BTree,
                "ctree": ct.CTree,
                "rbtree": rt.RBTree,
            }[name]
            pool = ObjectPool.open(
                memory, name, module.LAYOUT, root_cls
            )
            tree = tree_cls(pool)
            items = tree.items()
            assert items in valid_states, (
                f"{name} fp#{failure_point.fid}: {items}"
            )
            assert tree.count() == len(items)
            tree.check()


@pytest.mark.parametrize(
    "mode", [CrashImageMode.AS_WRITTEN, CrashImageMode.PERSISTED_ONLY],
    ids=["as-written", "persisted-only"],
)
class TestTransactionAtomicity:
    def test_linkedlist_recovers_to_an_operation_prefix(self, mode):
        appends = 4
        workload_values = [1000 + i for i in range(appends)]
        from repro.workloads.linkedlist import LinkedListWorkload

        workload = LinkedListWorkload(
            recovery="alt", init_size=0, test_size=appends
        )
        result = Frontend(DetectorConfig()).run(workload)
        assert result.failure_points

        valid_states = [
            list(reversed(workload_values[:k]))
            for k in range(appends + 1)
        ]
        for failure_point in result.failure_points:
            memory = open_image(failure_point.images[0], mode)
            pool = ObjectPool.open(memory, "linkedlist", LL_LAYOUT,
                                   ListRoot)
            plist = PersistentList(pool)
            plist.recover_alt()
            items = plist.items()
            assert items in valid_states, (
                f"fp#{failure_point.fid}: {items}"
            )
            assert plist.length() == len(items)

    def test_hashmap_tx_recovers_to_an_operation_prefix(self, mode):
        from repro.workloads.hashmap_tx import HashmapTxWorkload

        inserts = 4
        workload = HashmapTxWorkload(init_size=0, test_size=inserts)
        keys = workload._keys()[:inserts]
        result = Frontend(DetectorConfig()).run(workload)
        assert result.failure_points

        valid_states = [
            sorted((key, key ^ 0xAB) for key in keys[:k])
            for k in range(inserts + 1)
        ]
        # pre_failure with test_size=4 also runs one update and one
        # remove after the inserts; add those terminal states.
        updated = dict(valid_states[-1])
        updated[keys[0]] = 0xDEAD
        valid_states.append(sorted(updated.items()))
        removed = dict(updated)
        removed.pop(keys[1])
        valid_states.append(sorted(removed.items()))

        for failure_point in result.failure_points:
            memory = open_image(failure_point.images[0], mode)
            pool = ObjectPool.open(memory, "hashmap_tx", HT_LAYOUT,
                                   TxRoot)
            hashmap = HashmapTX(pool)
            items = hashmap.items()
            assert items in valid_states, (
                f"fp#{failure_point.fid}: {items}"
            )
            assert hashmap.count() == len(items)
