"""Tests for the crash-state enumeration extension
(DetectorConfig.crash_state_variants)."""

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.core.frontend import Frontend
from repro.pm.image import PMImage
from repro.workloads import LinkedListWorkload


class TestVariantImages:
    def test_variant_bytes_masks_lines(self):
        data = bytes(b"N" * 128)
        persisted = bytes(b"O" * 128)
        image = PMImage("p", 0, data, persisted, volatile_lines=(0, 64))
        assert image.crash_state_count == 4
        assert image.variant_bytes(0b11) == data
        assert image.variant_bytes(0b00) == persisted
        mixed = image.variant_bytes(0b01)
        assert mixed[:64] == b"N" * 64
        assert mixed[64:] == b"O" * 64

    def test_images_record_volatile_lines(self):
        workload = LinkedListWorkload(
            recovery="naive", init_size=1, test_size=1,
            faults={"unlogged_length"},
        )
        result = Frontend(DetectorConfig()).run(workload)
        # At a mid-transaction failure point something is volatile.
        assert any(
            fp.images[0].volatile_lines
            for fp in result.failure_points
        )


class TestVariantRuns:
    def _workload(self):
        return LinkedListWorkload(
            recovery="naive", init_size=1, test_size=1,
            faults={"unlogged_length"},
        )

    def test_variants_spawn_extra_post_runs(self):
        base = Frontend(DetectorConfig()).run(self._workload())
        fuzzed = Frontend(
            DetectorConfig(crash_state_variants=3)
        ).run(self._workload())
        assert len(fuzzed.post_runs) > len(base.post_runs)
        variants = [
            run.variant for run in fuzzed.post_runs
            if run.variant is not None
        ]
        assert variants, "expected variant runs"
        assert all(0 <= v < 3 for v in variants)

    def test_variant_sampling_is_deterministic(self):
        first = Frontend(
            DetectorConfig(crash_state_variants=3)
        ).run(self._workload())
        second = Frontend(
            DetectorConfig(crash_state_variants=3)
        ).run(self._workload())
        assert len(first.post_runs) == len(second.post_runs)

    def test_detection_still_works_with_variants(self):
        report = XFDetector(
            DetectorConfig(crash_state_variants=2)
        ).run(self._workload())
        assert report.races

    def test_variants_can_expose_value_dependent_crashes(self):
        """The paper's pop-on-empty-list crash depends on which values
        survive: the crash-state sweep must surface at least as many
        crashing states as the single-image run."""
        base = XFDetector(DetectorConfig()).run(self._workload())
        fuzzed = XFDetector(
            DetectorConfig(crash_state_variants=4)
        ).run(self._workload())
        assert len(fuzzed.crashes) >= len(base.crashes)

    def test_zero_variants_by_default(self):
        result = Frontend(DetectorConfig()).run(self._workload())
        assert all(run.variant is None for run in result.post_runs)
