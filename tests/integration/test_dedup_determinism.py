"""Dedup/memoization must never change what a run reports.

The report contract: with dedup and the replay memo on, at any
executor width, the report's content (bugs with per-fid provenance,
incidents, non-timing stats) is identical to a serial dedup-off run —
the only differences allowed are the skipped-work counters themselves.
"""

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.errors import HarnessError
from repro.exec import ProcessExecutor
from repro.pm.pool import PMPool
from repro.workloads import HashmapAtomicWorkload, HashmapTxWorkload
from repro.workloads.base import Workload

SKIPPED_WORK_KEYS = ("post_runs_deduped", "replays_deduped")


def _content(report):
    data = report.to_dict(unique=False)
    data["stats"] = {
        key: value for key, value in data["stats"].items()
        if not key.endswith("seconds")
        and key not in SKIPPED_WORK_KEYS
    }
    return data


def _config(enabled, **kwargs):
    return DetectorConfig(dedup=enabled, replay_memo=enabled, **kwargs)


class ForcedDuplicates(Workload):
    """Bursts of forced failure points between persists: every point
    in a burst crashes into the same image."""

    name = "forced_duplicates"

    def setup(self, ctx):
        ctx.memory.map_pool(PMPool("p", 1 << 20))

    def pre_failure(self, ctx):
        memory = ctx.memory
        base = memory.pool_named("p").base
        for step in range(self.test_size):
            address = base + 64 * step
            memory.store(address, step.to_bytes(8, "little"))
            memory.flush(address, 8)
            memory.fence()
            for _ in range(3):
                memory.force_failure_point()

    def post_failure(self, ctx):
        memory = ctx.memory
        base = memory.pool_named("p").base
        for step in range(self.test_size):
            memory.load(base + 64 * step, 8)


class TestParallelDedupDeterminism:
    @pytest.mark.parametrize(
        "workload_cls", [HashmapTxWorkload, HashmapAtomicWorkload]
    )
    def test_jobs4_dedup_on_equals_serial_dedup_off(
        self, workload_cls
    ):
        def factory():
            return workload_cls(
                faults=(
                    {"skip_persist_count"}
                    if workload_cls is HashmapAtomicWorkload else ()
                ),
                test_size=3,
            )

        serial_off = XFDetector(_config(False)).run(factory())
        executor = (
            "process" if ProcessExecutor.available() else "thread"
        )
        parallel_on = XFDetector(
            _config(True, jobs=4, executor=executor)
        ).run(factory())
        assert _content(parallel_on) == _content(serial_off)


class TestDedupFires:
    def test_forced_duplicates_dedup_and_identical_report(self):
        off = XFDetector(_config(False)).run(
            ForcedDuplicates(test_size=3)
        )
        on = XFDetector(_config(True)).run(
            ForcedDuplicates(test_size=3)
        )
        assert on.stats.post_runs_deduped > 0
        assert on.stats.replays_deduped > 0
        metrics = on.telemetry.metrics
        assert metrics.value("post_runs_deduped") == \
            on.stats.post_runs_deduped
        assert metrics.value("replay_events_skipped") > 0
        assert metrics.value("replay_checkpoints_skipped") > 0
        assert metrics.value("dedup_bytes_hashed") > 0
        assert _content(on) == _content(off)

    def test_parallel_forced_duplicates_identical(self):
        executor = (
            "process" if ProcessExecutor.available() else "thread"
        )
        serial_off = XFDetector(_config(False)).run(
            ForcedDuplicates(test_size=3)
        )
        parallel_on = XFDetector(
            _config(True, jobs=4, executor=executor)
        ).run(ForcedDuplicates(test_size=3))
        assert parallel_on.stats.post_runs_deduped > 0
        assert _content(parallel_on) == _content(serial_off)

    def test_dedup_off_runs_everything(self):
        report = XFDetector(_config(False)).run(
            ForcedDuplicates(test_size=3)
        )
        assert report.stats.post_runs_deduped == 0
        assert report.stats.replays_deduped == 0


class TestQuarantinedRepresentativeFallback:
    def test_members_run_when_representative_quarantined(
        self, monkeypatch
    ):
        """A quarantined class representative speaks for nobody: the
        members it spoke for run themselves in a fallback wave, so
        only the representative's own outcome is lost."""
        import repro.core.frontend as frontend_mod

        broken_fid = 1  # representative of the duplicate class {1,2,3}
        original = frontend_mod.run_post_task

        def flaky_run_post_task(ctx, key):
            if key[0] == broken_fid:
                raise HarnessError(
                    "injected representative fault", phase="post_exec"
                )
            return original(ctx, key)

        monkeypatch.setattr(
            frontend_mod, "run_post_task", flaky_run_post_task
        )
        report = XFDetector(
            _config(True, retry_backoff=0.0)
        ).run(ForcedDuplicates(test_size=2))
        monkeypatch.setattr(frontend_mod, "run_post_task", original)
        clean = XFDetector(_config(True)).run(
            ForcedDuplicates(test_size=2)
        )
        # Sanity: the broken fid really is a multi-member class rep.
        assert clean.stats.post_runs_deduped > 0

        assert report.degraded
        assert [
            incident.failure_point for incident in report.incidents
        ] == [broken_fid]
        metrics = report.telemetry.metrics
        assert metrics.value("dedup_fallback_runs") > 0
        # Every outcome except the representative's own survived.
        assert (
            report.stats.post_runs_analyzed
            == clean.stats.post_runs_analyzed - 1
        )
        clean_bugs = [
            bug for bug in clean.to_dict(unique=False)["bugs"]
            if bug["failure_point"] != broken_fid
        ]
        report_bugs = report.to_dict(unique=False)["bugs"]
        assert report_bugs == clean_bugs


class TestNoDedupEscapeHatch:
    def test_cli_no_dedup_flag(self, capsys):
        from repro.cli import main

        status = main([
            "run", "hashmap_tx", "--test", "1", "--no-dedup",
            "--json",
        ])
        import json

        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["stats"]["post_runs_deduped"] == 0
        assert payload["stats"]["replays_deduped"] == 0

    def test_env_knob_disables_dedup(self, monkeypatch):
        monkeypatch.setenv("XFD_DEDUP", "0")
        config = DetectorConfig()
        assert config.dedup is False
        assert config.replay_memo is False
        monkeypatch.setenv("XFD_DEDUP", "1")
        config = DetectorConfig()
        assert config.dedup is True
        assert config.replay_memo is True


class TestDescribe:
    def test_post_run_and_result_describe_dedup(self):
        result = None
        report = XFDetector(_config(True)).run(
            ForcedDuplicates(test_size=2)
        )
        assert report.stats.post_runs_deduped > 0

        from repro.core.frontend import Frontend

        result = Frontend(_config(True)).run(
            ForcedDuplicates(test_size=2)
        )
        assert "dedup_classes=" in result.describe()
        cloned = [run for run in result.post_runs if run.deduped]
        assert cloned
        assert "cloned" in repr(cloned[0])
        assert "dedup_class=" in cloned[0].describe()
