"""Tests for the eADR platform model: persistent caches make every
store durable, eliminating cross-failure races but not semantic bugs."""

import pytest

from repro.core import BugKind, DetectorConfig, XFDetector
from repro.pm.cacheline import PlatformMode
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.trace.recorder import TraceRecorder
from repro.workloads import (
    ArrayBackupWorkload,
    HashmapAtomicWorkload,
    LinkedListWorkload,
)


def eadr_config(**kwargs):
    return DetectorConfig(platform=PlatformMode.EADR, **kwargs)


class TestEadrRuntime:
    def make_memory(self):
        memory = PersistentMemory(
            TraceRecorder(), capture_ips=False,
            platform=PlatformMode.EADR,
        )
        pool = memory.map_pool(PMPool("p", size=1 << 16))
        return memory, pool

    def test_store_is_immediately_durable(self):
        memory, pool = self.make_memory()
        memory.store(pool.base, b"x")
        assert memory.is_persisted(pool.base, 1)

    def test_nt_store_is_immediately_durable(self):
        memory, pool = self.make_memory()
        memory.nt_store(pool.base, b"x")
        assert memory.is_persisted(pool.base, 1)

    def test_strict_image_equals_program_view(self):
        memory, pool = self.make_memory()
        memory.store(pool.base, b"durable")
        image = memory.snapshot_images()[0]
        assert image.persisted_data[:7] == b"durable"
        assert image.volatile_lines == ()

    def test_fence_is_ordering_point_after_store(self):
        memory, pool = self.make_memory()
        assert memory.fence() is False
        memory.store(pool.base, b"x")
        assert memory.fence() is True
        assert memory.fence() is False

    def test_flush_is_redundant(self):
        memory, pool = self.make_memory()
        memory.store(pool.base, b"x")
        assert memory.cache.flush(pool.base) is False


class TestEadrDetection:
    def test_races_vanish_on_eadr(self):
        """Figure 1's length race is an ADR phenomenon: with persistent
        caches, the unlogged write is durable and recovery reads a
        well-defined (pre- or post-increment) value."""
        workload_args = dict(
            recovery="naive", init_size=2, test_size=1,
            faults={"unlogged_length"},
        )
        adr = XFDetector(DetectorConfig()).run(
            LinkedListWorkload(**workload_args)
        )
        eadr = XFDetector(eadr_config()).run(
            LinkedListWorkload(**workload_args)
        )
        assert adr.races
        assert not eadr.races

    def test_semantic_bugs_survive_eadr(self):
        """Figure 2's inverted valid bit is a *semantic* bug: durability
        does not fix wrong commit values."""
        report = XFDetector(eadr_config()).run(
            ArrayBackupWorkload(test_size=2, faults={"swapped_valid"})
        )
        assert report.semantic_bugs
        assert not report.races

    def test_every_flush_is_a_perf_bug_on_eadr(self):
        """Software written for ADR wastes writebacks on eADR — the
        detector's perf reports quantify the cleanup opportunity."""
        report = XFDetector(eadr_config()).run(
            ArrayBackupWorkload(test_size=1)
        )
        assert report.perf_bugs
        assert all(
            "redundant writeback" in bug.detail
            for bug in report.perf_bugs
        )

    def test_failure_points_still_injected_on_eadr(self):
        report = XFDetector(eadr_config()).run(
            LinkedListWorkload(recovery="alt", init_size=1, test_size=1)
        )
        assert report.stats.failure_points > 0

    def test_uninitialized_reads_still_caught_on_eadr(self):
        """Bug 2 is not a durability problem: allocated-but-never-
        written memory is undefined on any platform."""
        report = XFDetector(eadr_config(report_perf_bugs=False)).run(
            HashmapAtomicWorkload(
                faults={"bug2_uninit_count"}, test_size=1
            )
        )
        assert any(
            "never-initialized" in bug.detail for bug in report.races
        )
