"""Smoke tests: every shipped example runs clean and prints what its
docstring promises."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

EXPECTATIONS = {
    "quickstart.py": ["cross-failure race", "cross-failure semantic"],
    "detect_new_bugs.py": ["Bug 1", "Bug 4", "DETECTED"],
    "redis_recovery.py": [
        "no bugs", "crash-consistent", "GET post-crash",
    ],
    "custom_mechanism.py": ["no bugs", "cross-failure race"],
    "offline_trace_analysis.py": [
        "offline verdict matches the online pipeline",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for needle in EXPECTATIONS[script]:
        assert needle in result.stdout, (
            f"{script}: {needle!r} missing from output"
        )


def test_examples_inventory_complete():
    scripts = {
        name for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert scripts == set(EXPECTATIONS), (
        "every example needs a smoke test"
    )
