"""Resumable run journal: kill a run, resume it, get the same report.

The journal records one NDJSON entry per completed failure-point
outcome under a config+trace checksum header.  ``--resume`` must (a)
splice journaled outcomes back byte-identically, (b) refuse a journal
recorded for a different run, (c) tolerate a journal truncated by a
mid-run kill, and (d) retry — not resurrect — quarantined points.
"""

import json

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.errors import (
    DetectorError,
    HarnessError,
    JournalError,
    JournalMismatchError,
)
from repro.pm.snapshot import SnapshotStore
from repro.workloads import HashmapAtomicWorkload


def _workload(test_size=3):
    return HashmapAtomicWorkload(
        faults={"skip_persist_count"}, test_size=test_size
    )


def _run(test_size=3, **config_kwargs):
    config = DetectorConfig(retry_backoff=0.0, **config_kwargs)
    return XFDetector(config).run(_workload(test_size))


def _report_dict(report):
    data = report.to_dict(unique=False)
    data["stats"] = {
        key: value for key, value in data["stats"].items()
        if not key.endswith("seconds")
    }
    return data


def _read_journal(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestJournalRecording:
    def test_journal_has_header_and_one_entry_per_point(self, tmp_path):
        path = str(tmp_path / "run.ndjson")
        report = _run(journal=path)
        records = _read_journal(path)
        header, entries = records[0], records[1:]
        assert header["type"] == "header"
        assert header["workload"] == "hashmap_atomic"
        assert len(header["checksum"]) == 64
        assert all(record["type"] == "post" for record in entries)
        assert len(entries) == report.stats.post_runs_analyzed
        # Journaling must not change the report itself.
        assert _report_dict(report) == _report_dict(_run())

    def test_journal_refused_under_audit(self, tmp_path):
        path = str(tmp_path / "run.ndjson")
        with pytest.raises(DetectorError):
            _run(journal=path, audit=True)

    def test_journal_refused_under_fail_fast(self, tmp_path):
        path = str(tmp_path / "run.ndjson")
        with pytest.raises(DetectorError):
            _run(journal=path, fail_fast=True)


class TestResume:
    def test_full_resume_reproduces_the_report(self, tmp_path):
        first_path = str(tmp_path / "first.ndjson")
        reference = _report_dict(_run(journal=first_path))
        resumed = _run(
            resume=first_path,
            journal=str(tmp_path / "second.ndjson"),
        )
        assert _report_dict(resumed) == reference
        assert resumed.telemetry.metrics.value(
            "journal.points_resumed"
        ) == resumed.stats.post_runs_analyzed

    def test_resume_carries_entries_into_the_new_journal(
        self, tmp_path
    ):
        first_path = str(tmp_path / "first.ndjson")
        second_path = str(tmp_path / "second.ndjson")
        _run(journal=first_path)
        _run(resume=first_path, journal=second_path)
        first = _read_journal(first_path)
        second = _read_journal(second_path)
        assert second[0]["checksum"] == first[0]["checksum"]
        key = lambda r: (r["fid"], r["variant"] or -1)
        assert sorted(second[1:], key=key) == sorted(
            first[1:], key=key
        )

    def test_mid_run_kill_then_resume(self, tmp_path):
        """A journal truncated mid-run (the kill scenario: every write
        is flushed, so at most the final record is lost) resumes into
        a report equal to the uninterrupted one."""
        full_path = tmp_path / "full.ndjson"
        reference = _report_dict(_run(journal=str(full_path)))
        lines = full_path.read_text().splitlines(keepends=True)
        assert len(lines) > 3
        killed_path = tmp_path / "killed.ndjson"
        killed_path.write_text("".join(lines[:-2]))
        resumed = _run(
            resume=str(killed_path),
            journal=str(tmp_path / "resumed.ndjson"),
        )
        assert _report_dict(resumed) == reference
        # The dropped points were genuinely re-executed.
        assert resumed.telemetry.metrics.value(
            "journal.points_resumed"
        ) == len(lines) - 3  # header + 2 truncated records

    def test_resume_in_place_appends(self, tmp_path):
        """``--resume PATH`` without ``--journal`` continues appending
        to the same file instead of truncating it."""
        path = tmp_path / "run.ndjson"
        _run(journal=str(path))
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]))
        _run(resume=str(path))
        records = _read_journal(str(path))
        headers = [r for r in records if r["type"] == "header"]
        assert len(headers) == 1
        assert len(records) == len(lines)


class TestResumeRefusals:
    def test_checksum_mismatch_is_refused(self, tmp_path):
        path = str(tmp_path / "run.ndjson")
        _run(test_size=3, journal=path)
        with pytest.raises(JournalMismatchError):
            _run(test_size=2, resume=path)

    def test_config_change_is_refused(self, tmp_path):
        path = str(tmp_path / "run.ndjson")
        _run(journal=path)
        with pytest.raises(JournalMismatchError):
            _run(resume=path, trust_allocator_zeroing=True)

    def test_missing_journal_is_a_journal_error(self, tmp_path):
        with pytest.raises(JournalError):
            _run(resume=str(tmp_path / "nope.ndjson"))

    def test_headerless_journal_is_a_journal_error(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type": "post", "fid": 0}\n')
        with pytest.raises(JournalError):
            _run(resume=str(path))


class TestQuarantineInteraction:
    def test_quarantined_points_retry_on_resume(
        self, tmp_path, monkeypatch
    ):
        """Run 1 quarantines a point (harness fault) — the journal
        deliberately omits it.  Run 2, resumed with the fault gone,
        re-executes exactly that point and produces the clean run's
        report."""
        reference = _report_dict(_run())
        broken_fid = 1
        originals = {
            name: getattr(SnapshotStore, name)
            for name in ("materialize", "deltas")
        }

        def flaky(name):
            def accessor(self, fid):
                if fid == broken_fid:
                    raise HarnessError(
                        "snapshot store corrupted", phase="post_exec"
                    )
                return originals[name](self, fid)

            return accessor

        journal_path = str(tmp_path / "degraded.ndjson")
        for name in originals:
            monkeypatch.setattr(SnapshotStore, name, flaky(name))
        degraded = _run(journal=journal_path)
        for name, method in originals.items():
            monkeypatch.setattr(SnapshotStore, name, method)
        assert degraded.degraded
        journaled_fids = {
            record["fid"]
            for record in _read_journal(journal_path)
            if record["type"] == "post"
        }
        assert broken_fid not in journaled_fids

        healed = _run(
            resume=journal_path,
            journal=str(tmp_path / "healed.ndjson"),
        )
        assert _report_dict(healed) == reference
        assert not healed.degraded
