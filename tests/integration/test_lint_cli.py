"""CLI tests for the ``lint`` subcommand and the run exit-code
contract (non-zero whenever the printed report contains any bug,
performance bugs included)."""

import json

import pytest

from repro.cli import main


class TestLint:
    def test_clean_workload_exits_zero(self, capsys):
        code = main(["lint", "linkedlist"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no findings" in out

    def test_faulty_workload_reports_rule_and_location(self, capsys):
        code = main([
            "lint", "linkedlist", "--fault", "unlogged_length",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "XF-T001" in out
        assert "linkedlist.py:" in out

    def test_json_output(self, capsys):
        code = main([
            "lint", "hashmap_atomic",
            "--fault", "redundant_flush_count", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["findings"] == payload["new_findings"] == 1
        (report,) = payload["reports"]
        (finding,) = report["findings"]
        assert finding["rule"] == "XF-F001"
        assert finding["severity"] == "performance"
        assert finding["location"].startswith(
            "src/repro/workloads/hashmap_atomic.py:"
        )

    def test_ndjson_sidecar(self, capsys, tmp_path):
        path = tmp_path / "lint.ndjson"
        main([
            "lint", "linkedlist", "--fault", "unlogged_length",
            "--ndjson", str(path),
        ])
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        kinds = {record["type"] for record in records}
        assert kinds == {"finding", "analysis_stats"}
        assert any(
            record.get("rule") == "XF-T001" for record in records
        )

    def test_baseline_suppresses_known_findings(self, capsys,
                                                tmp_path):
        baseline = tmp_path / "baseline.txt"
        code = main([
            "lint", "linkedlist", "--fault", "unlogged_length",
            "--write-baseline", str(baseline),
        ])
        assert code == 0
        assert "XF-T001" in baseline.read_text()
        capsys.readouterr()
        code = main([
            "lint", "linkedlist", "--fault", "unlogged_length",
            "--baseline", str(baseline),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 new finding(s), 1 baselined" in out

    def test_offline_trace_mode(self, capsys, tmp_path):
        trace = tmp_path / "pre.trace"
        main([
            "trace", "hashmap_atomic", "--init", "1", "--test", "1",
            "--fault", "redundant_flush_count",
            "--dump", str(trace),
        ])
        capsys.readouterr()
        code = main(["lint", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 1
        assert "XF-F001" in out

    def test_all_requires_no_positional(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--trace", "/nonexistent", "--all"])

    def test_missing_selection_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint"])

    def test_mechanisms_mode_lints_all_six(self, capsys):
        code = main(["lint", "--mechanisms"])
        out = capsys.readouterr().out
        assert code == 0
        for name in (
            "undo-logging", "redo-logging", "checkpointing",
            "shadow-paging", "operational-logging",
            "checksum-recovery",
        ):
            assert f"mech:mech-{name}" in out

    def test_mechanisms_fault_surfaces_xfm_finding(self, capsys):
        code = main([
            "lint", "--mechanisms", "--fault", "valid_before_log",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "XF-M002" in out

    def test_sarif_export_round_trips(self, capsys, tmp_path):
        from repro.analysis import findings_from_sarif

        path = tmp_path / "lint.sarif"
        main([
            "lint", "linkedlist", "--fault", "unlogged_length",
            "--sarif", str(path),
        ])
        text = path.read_text()
        payload = json.loads(text)
        assert payload["version"] == "2.1.0"
        findings = findings_from_sarif(text)
        assert any(f.rule == "XF-T001" for f in findings)


class TestRunExitCodes:
    """``run`` exits non-zero iff the printed report has bugs — a
    performance-only report must not exit 0 (regression: the old exit
    path keyed on ``has_cross_failure_bugs``, which excludes
    performance bugs)."""

    PERF_ONLY = [
        "run", "hashmap_atomic", "--init", "1", "--test", "1",
        "--fault", "redundant_flush_count",
    ]

    def test_perf_only_report_exits_nonzero(self, capsys):
        code = main(list(self.PERF_ONLY))
        out = capsys.readouterr().out
        assert "performance" in out
        assert code == 1

    def test_perf_only_report_exits_nonzero_with_json(self, capsys):
        code = main(list(self.PERF_ONLY) + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["bugs"]
        assert all(
            bug["kind"] == "performance bug"
            for bug in payload["bugs"]
        )
        assert code == 1

    def test_suppressed_perf_bugs_exit_zero(self, capsys):
        code = main(list(self.PERF_ONLY) + ["--no-perf-bugs"])
        out = capsys.readouterr().out
        assert "no bugs" in out
        assert code == 0

    def test_clean_json_run_exits_zero(self, capsys):
        code = main([
            "run", "linkedlist", "--init", "1", "--test", "1",
            "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["bugs"] == []
        assert code == 0

    def test_static_prune_flag_prints_pruned_count(self, capsys):
        code = main([
            "run", "btree", "--init", "2", "--test", "3",
            "--static-prune",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned statically" in out
