"""End-to-end live telemetry: a real detection run with every sink
attached, the byte-identical-report guarantee with telemetry on, the
event-stream determinism contract, and the HTML report CLI."""

import pytest

from repro import cli
from repro.core import DetectorConfig, XFDetector
from repro.exec import ProcessExecutor
from repro.obs import run_records
from repro.obs.live import (
    EVENT_KINDS,
    normalized_stream,
    parse_exposition,
    read_events,
)
from repro.workloads import HashmapAtomicWorkload


def _workload():
    return HashmapAtomicWorkload(
        faults={"skip_persist_count"}, test_size=3
    )


def _run(tmp_path, tag, jobs=1, executor="serial", progress=None,
         prom=False):
    events_path = str(tmp_path / f"{tag}.ndjson")
    config_kwargs = {
        "jobs": jobs,
        "executor": executor,
        "events": events_path,
        "progress": progress,
        "heartbeat_interval": 0.01,
    }
    prom_path = None
    if prom:
        prom_path = str(tmp_path / f"{tag}.prom")
        config_kwargs["prom_textfile"] = prom_path
    detector = XFDetector(DetectorConfig(**config_kwargs))
    try:
        report = detector.run(_workload())
    finally:
        detector.telemetry.close()
    return report, read_events(events_path), prom_path


def _report_dict(report):
    data = report.to_dict(unique=False)
    data["stats"] = {
        key: value for key, value in data["stats"].items()
        if not key.endswith("seconds")
    }
    return data


class TestLiveRun:
    def test_full_run_emits_the_whole_taxonomy(self, tmp_path):
        report, events, prom_path = _run(
            tmp_path, "full", prom=True
        )
        kinds = [event.kind for event in events]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_finished"
        # Every run produces at least one heartbeat, however short.
        assert kinds.count("heartbeat") >= 1
        for expected in (
            "phase_started", "phase_finished", "point_injected",
            "point_dispatched", "point_completed", "finding",
        ):
            assert expected in kinds, f"missing {expected}"
        assert set(kinds) <= EVENT_KINDS
        # One run id throughout; sequence strictly increasing.
        assert len({event.run_id for event in events}) == 1
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # Phase lifecycle covers the full pipeline.
        phases = [
            e.data["phase"] for e in events
            if e.kind == "phase_started"
        ]
        assert phases == ["setup", "pre_failure", "post_exec",
                          "backend"]
        # The finding events mirror the report's bug list.
        findings = [e for e in events if e.kind == "finding"]
        assert len(findings) == len(report.bugs)
        assert {e.data["bug_kind"] for e in findings} \
            == {bug.kind.name for bug in report.bugs}
        # point_injected count matches the stats.
        assert kinds.count("point_injected") \
            == report.stats.failure_points
        # run_finished carries only deterministic counters.
        final = events[-1]
        assert final.data["findings"] == len(report.bugs)
        assert not any(
            key.endswith("seconds") for key in final.data["stats"]
        )
        # The Prometheus textfile parses and carries both registry
        # metrics and run-progress gauges.
        families = parse_exposition(open(prom_path).read())
        assert "xfd_failure_points_injected" in families
        assert "xfd_run_findings" in families
        assert families["xfd_run_finished"]["samples"][0][2] == 1.0

    def test_report_identical_with_telemetry_on_and_off(
        self, tmp_path
    ):
        plain = XFDetector(DetectorConfig())
        baseline = plain.run(_workload())
        plain.telemetry.close()
        observed, _events, _prom = _run(
            tmp_path, "observed", prom=True
        )
        assert _report_dict(observed) == _report_dict(baseline)
        base_records = [
            r for r in run_records(baseline, unique=False)
            if r.get("type") == "finding"
        ]
        obs_records = [
            r for r in run_records(observed, unique=False)
            if r.get("type") == "finding"
        ]
        assert obs_records == base_records

    def test_event_stream_is_schedule_independent(self, tmp_path):
        _report, serial_events, _ = _run(tmp_path, "serial")
        _report, thread_events, _ = _run(
            tmp_path, "thread", jobs=4, executor="thread"
        )
        assert normalized_stream(serial_events) \
            == normalized_stream(thread_events)
        if ProcessExecutor.available():
            _report, process_events, _ = _run(
                tmp_path, "process", jobs=4, executor="process"
            )
            assert normalized_stream(serial_events) \
                == normalized_stream(process_events)


class TestWorkerSpans:
    def test_pool_workers_ship_span_trees(self):
        """The PR-3 blind spot: pooled runs used to lose all worker
        span detail.  Now every post_run tree arrives with its worker
        tag and its children intact."""
        config = DetectorConfig(jobs=4, executor="thread")
        detector = XFDetector(config)
        report = detector.run(_workload())
        detector.telemetry.close()
        spans = report.telemetry.spans
        post_runs = [
            span for span, _depth in spans.walk()
            if span.name == "post_run"
        ]
        assert len(post_runs) == report.stats.failure_points
        for span in post_runs:
            assert span.attrs.get("worker")
            assert [c.name for c in span.children] \
                == ["materialize_image", "recovery"]
            assert span.duration > 0

    def test_folded_output_covers_worker_trees(self):
        config = DetectorConfig(jobs=2, executor="thread")
        detector = XFDetector(config)
        report = detector.run(_workload())
        detector.telemetry.close()
        folded = report.telemetry.spans.folded()
        paths = [line.rsplit(" ", 1)[0] for line in folded]
        assert "run;post_run;recovery" in paths
        assert all(
            line.rsplit(" ", 1)[1].isdigit() for line in folded
        )


class TestReportCli:
    def test_report_subcommand_renders_html(self, tmp_path, capsys):
        events_path = str(tmp_path / "run.ndjson")
        ndjson_path = str(tmp_path / "records.ndjson")
        rc = cli.main([
            "run", "hashmap_atomic",
            "--fault", "skip_persist_count",
            "--test", "3",
            "--events", events_path,
            "--ndjson", ndjson_path,
            "--quiet",
        ])
        assert rc == 1  # the injected fault is a real finding
        out_path = str(tmp_path / "report.html")
        rc = cli.main([
            "report", events_path,
            "--ndjson", ndjson_path,
            "--out", out_path,
            "--title", "smoke",
        ])
        assert rc == 0
        html = open(out_path).read()
        assert html.startswith("<!DOCTYPE html")
        assert "smoke" in html
        assert "hashmap_atomic" in html
        # Self-contained: no external fetches of any kind.
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html
        # The joined span records produce the flamegraph section.
        assert "Span profile" in html
        assert 'class="flame"' in html
        assert capsys.readouterr().out.count("report.html") >= 1

    def test_report_rejects_corrupt_stream(self, tmp_path):
        bad = tmp_path / "bad.ndjson"
        bad.write_text('{"v": 99, "kind": "finding"}\n')
        with pytest.raises(SystemExit):
            cli.main(["report", str(bad)])

    def test_default_output_path_derives_from_stream(
        self, tmp_path, monkeypatch
    ):
        events_path = str(tmp_path / "run.ndjson")
        rc = cli.main([
            "run", "hashmap_atomic",
            "--fault", "skip_persist_count",
            "--test", "3",
            "--events", events_path,
            "--quiet",
        ])
        assert rc == 1  # the injected fault is a real finding
        rc = cli.main(["report", events_path])
        assert rc == 0
        assert (tmp_path / "run.html").exists()


class TestProfileCli:
    def test_profile_top_and_folded(self, capsys):
        rc = cli.main([
            "profile", "hashmap_atomic",
            "--fault", "skip_persist_count",
            "--test", "3",
            "--top", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        header = next(
            i for i, line in enumerate(lines)
            if line.startswith("span")
        )
        assert "self" in lines[header] and "total" in lines[header]
        # --top 5 caps the table at five data rows.
        body = [line for line in lines[header + 1:] if line.strip()]
        assert len(body) == 5
        assert any("recovery" in line for line in body)
        rc = cli.main([
            "profile", "hashmap_atomic",
            "--fault", "skip_persist_count",
            "--test", "3",
            "--folded",
        ])
        assert rc == 0
        folded_out = capsys.readouterr().out
        lines = [l for l in folded_out.splitlines() if l]
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert value.isdigit()
            assert path.split(";")[0] == "run"
