"""Mechanism-inference ground truth (MECH_EXPECTATIONS).

Every (mechanism workload, fault) row must produce *exactly* its
expected XF-M rule set from trace-level inference — clean builds stay
finding-free, seeded violations surface as invariant findings — and
every seeded mechanism bug must also be caught dynamically, so the
static and dynamic views of the suite never drift apart.
"""

import pytest

from repro.analysis import analyze_mechanisms_workload
from repro.analysis.groundtruth import (
    MECH_EXPECTATIONS,
    expected_mech_rules,
)
from repro.bugsuite import build_workload, mech_bug_entries
from repro.core import DetectorConfig, XFDetector
from repro.mechanisms import MECHANISMS
from repro.mechanisms.base import MechanismWorkload

BY_NAME = {
    f"mech-{cls.mechanism_name}": cls for cls in MECHANISMS
}


def _workload(name, flag):
    return MechanismWorkload(
        BY_NAME[name],
        faults=() if flag is None else (flag,),
        test_size=4,
    )


class TestStaticExpectations:
    @pytest.mark.parametrize(
        "name,flag", sorted(
            MECH_EXPECTATIONS,
            key=lambda item: (item[0], item[1] or ""),
        ),
        ids=[
            f"{name}:{flag or 'clean'}" for name, flag in sorted(
                MECH_EXPECTATIONS,
                key=lambda item: (item[0], item[1] or ""),
            )
        ],
    )
    def test_rule_set_is_exact(self, name, flag):
        report = analyze_mechanisms_workload(_workload(name, flag))
        rules = {finding.rule for finding in report.findings}
        assert rules == expected_mech_rules(name, flag)

    def test_every_documented_fault_has_a_row(self):
        for cls in MECHANISMS:
            name = f"mech-{cls.mechanism_name}"
            assert (name, None) in MECH_EXPECTATIONS, name
            for flag in cls.FAULTS:
                assert (name, flag) in MECH_EXPECTATIONS, (name, flag)

    def test_unknown_build_raises(self):
        with pytest.raises(KeyError):
            expected_mech_rules("mech-undo-logging", "no_such_fault")


class TestSeededBugsDynamically:
    @pytest.mark.parametrize(
        "bug", mech_bug_entries(), ids=str,
    )
    def test_seeded_bug_detected_and_flagged(self, bug):
        # Dynamic: failure injection reports a bug of the seeded class.
        report = XFDetector(DetectorConfig()).run(build_workload(bug))
        assert any(
            found.kind is bug.expected_kind for found in report.bugs
        )
        # Static: the same build carries its XF-M invariant finding.
        analysis = analyze_mechanisms_workload(build_workload(bug))
        rules = {finding.rule for finding in analysis.findings}
        assert rules == expected_mech_rules(bug.workload, bug.flag)
        assert rules  # a seeded mechanism bug is never invisible

    def test_clean_builds_report_nothing(self):
        for cls in MECHANISMS:
            workload = MechanismWorkload(cls, test_size=4)
            report = XFDetector(
                DetectorConfig(progress=False)
            ).run(workload)
            assert not report.bugs, cls.mechanism_name
