"""End-to-end telemetry acceptance tests.

Exercises the ISSUE's acceptance flow: an audited detection run on
hashmap_atomic with a Table 5 fault must produce a span tree whose
leaves account for the run's wall-clock, a metrics dump with the
pipeline's key counters, and an audit log whose per-range FSM history
names the same writer as the bug report.
"""

import json

import pytest

from repro.cli import main
from repro.core import DetectorConfig, XFDetector
from repro.obs import read_ndjson
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def audited_report():
    workload = ALL_WORKLOADS["hashmap_atomic"](
        faults={"bug1_unpersisted_create"}
    )
    return XFDetector(DetectorConfig(audit=True)).run(workload)


class TestSpanProfile:
    def test_leaf_durations_cover_wall_clock(self, audited_report):
        spans = audited_report.telemetry.spans
        # Leaves must sum to within 10% of total wall-clock.
        assert spans.coverage() >= 0.9
        assert spans.leaf_seconds() <= spans.total_seconds() + 1e-9

    def test_span_tree_shape(self, audited_report):
        spans = audited_report.telemetry.spans
        (run,) = spans.roots
        assert run.name == "run"
        assert run.attrs["workload"] == "hashmap_atomic"
        children = [child.name for child in run.children]
        assert children[0] == "setup"
        assert children[1] == "pre_failure"
        assert children[-1] == "backend"
        failure_points = audited_report.stats.failure_points
        assert len(spans.find("post_run")) == failure_points
        assert len(spans.find("post_replay")) == failure_points

    def test_stats_derive_from_spans(self, audited_report):
        telemetry = audited_report.telemetry
        spans = telemetry.spans
        stats = audited_report.stats
        snapshot = telemetry.metrics.timer("snapshot_seconds").total
        pre = (
            spans.first("setup").duration
            + spans.first("pre_failure").duration
            - snapshot
        )
        post = snapshot + sum(
            span.duration for span in spans.find("post_run")
        )
        assert stats.pre_failure_seconds == pytest.approx(pre)
        assert stats.post_failure_seconds == pytest.approx(post)
        assert stats.backend_seconds == pytest.approx(
            spans.first("backend").duration
        )


class TestMetrics:
    def test_required_counters_present(self, audited_report):
        metrics = audited_report.telemetry.metrics
        stats = audited_report.stats
        assert metrics.value("failure_points_injected") == \
            stats.failure_points
        assert metrics.value("post_runs") == stats.failure_points
        assert metrics.value("shadow_transitions_total") > 0
        assert metrics.value("bugs_reported_total") == \
            len(audited_report.bugs)
        # One pre replay + one per failure point, none RoI-scoped
        # (hashmap_atomic does not annotate an RoI).
        assert metrics.value("replays_whole_trace") == \
            stats.failure_points + 1
        assert metrics.value("replays_roi_scoped") == 0
        assert metrics.value("pre_trace_events") == \
            stats.pre_trace_events
        assert metrics.value("post_trace_events") == \
            stats.post_trace_events

    def test_roi_workload_counts_scoped_replays(self):
        from repro.pmdk import I64, ObjectPool, Struct, pmem
        from repro.workloads.base import Workload

        class Root(Struct):
            value = I64()

        class RoIWorkload(Workload):
            name = "roi-obs"
            uses_roi = True

            def setup(self, ctx):
                pool = ObjectPool.create(
                    ctx.memory, "roi", "roi", root_cls=Root
                )
                pool.root.value = 0
                pmem.persist(
                    ctx.memory, pool.root.address, Root.SIZE
                )

            def pre_failure(self, ctx):
                pool = ObjectPool.open(
                    ctx.memory, "roi", "roi", Root
                )
                ctx.interface.roi_begin()
                pool.root.value = 1
                pmem.persist(ctx.memory, pool.root.address, 8)
                ctx.interface.roi_end()

            def post_failure(self, ctx):
                pool = ObjectPool.open(
                    ctx.memory, "roi", "roi", Root
                )
                ctx.interface.roi_begin()
                _ = pool.root.value
                ctx.interface.roi_end()

        report = XFDetector(DetectorConfig()).run(RoIWorkload())
        metrics = report.telemetry.metrics
        assert report.stats.failure_points > 0
        assert metrics.value("replays_roi_scoped") == \
            report.stats.failure_points + 1
        assert metrics.value("replays_whole_trace") == 0


class TestAuditLog:
    def test_bug_range_history_names_the_writer(self, audited_report):
        log = audited_report.telemetry.audit
        assert log is not None and len(log) > 0
        races = audited_report.races
        assert races
        for bug in races:
            history = log.history_for(
                bug.address, bug.size, bug.failure_point
            )
            assert history, bug
            assert log.last_writer(
                bug.address, bug.size, bug.failure_point
            ) == str(bug.writer_ip), bug

    def test_records_carry_context(self, audited_report):
        log = audited_report.telemetry.audit
        stages = {record.stage for record in log}
        assert stages == {"pre", "post"}
        layers = {record.layer for record in log}
        assert "persistence" in layers
        for record in log:
            json.dumps(record.to_dict())  # exportable

    def test_audit_off_by_default(self):
        report = XFDetector(DetectorConfig()).run(
            ALL_WORKLOADS["hashmap_atomic"](
                faults={"bug1_unpersisted_create"}
            )
        )
        assert report.telemetry.audit is None
        assert "audit" not in report.telemetry.to_dict()


class TestCLI:
    def test_run_profile_json(self, capsys):
        code = main([
            "run", "--workload", "hashmap_tx", "--profile", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["telemetry"]["spans"]
        assert "post_runs" in payload["telemetry"]["metrics"]

    def test_run_audit_profile(self, capsys):
        code = main([
            "run", "hashmap_atomic",
            "--fault", "bug1_unpersisted_create",
            "--audit", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 1  # bugs found
        assert "spans (leaf coverage" in out
        assert "failure_points_injected" in out
        assert "shadow_transitions_total" in out
        assert '"type": "audit"' in out

    def test_run_ndjson_sidecar(self, tmp_path, capsys):
        path = tmp_path / "run.ndjson"
        code = main([
            "run", "linkedlist", "--init", "1", "--test", "1",
            "--ndjson", str(path),
        ])
        capsys.readouterr()
        assert code == 0
        types = {record["type"] for record in read_ndjson(path)}
        assert {"stats", "span", "metric"} <= types

    def test_profile_subcommand(self, capsys):
        code = main(["profile", "hashmap_tx"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans (leaf coverage" in out
        assert "metrics:" in out

    def test_conflicting_workloads_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "btree", "--workload", "ctree"])

    def test_missing_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run"])
