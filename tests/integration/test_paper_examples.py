"""End-to-end reproduction of the paper's Section 2 examples.

Figure 1: the linked-list ``length`` bug is only a bug with the naive
recovery; ``recover_alt`` makes the same pre-failure code correct —
pre-failure-only tools report a false positive there.

Figure 2 / Figure 11: the inverted valid bit produces a cross-failure
race when the backup is not yet persistent and a cross-failure semantic
bug when it is persistent but stale/uncommitted.
"""

import pytest

from repro.baselines import PmemcheckBaseline, PMTestBaseline
from repro.core import BugKind, DetectorConfig, XFDetector
from repro.workloads import ArrayBackupWorkload, LinkedListWorkload


class TestFigure1:
    def make(self, recovery):
        return LinkedListWorkload(
            recovery=recovery, init_size=2, test_size=1,
            faults={"unlogged_length"},
        )

    def test_naive_recovery_races_on_length(self):
        report = XFDetector().run(self.make("naive"))
        assert len(report.races) >= 1
        bug = report.races[0]
        assert "pop" in bug.reader_ip.function
        assert "append" in bug.writer_ip.function

    def test_recover_alt_is_clean(self):
        report = XFDetector().run(self.make("alt"))
        assert report.bugs == []

    def test_correct_append_is_clean_either_way(self):
        for recovery in ("naive", "alt"):
            workload = LinkedListWorkload(
                recovery=recovery, init_size=2, test_size=1
            )
            report = XFDetector().run(workload)
            assert report.bugs == [], recovery

    def test_baselines_false_positive_on_recover_alt(self):
        """Section 2.1: 'existing works can report a false positive as
        they only check the pre-failure stage'."""
        workload = self.make("alt")
        assert XFDetector().run(self.make("alt")).bugs == []
        pmtest = PMTestBaseline().run(workload)
        assert pmtest.has_findings  # the false positive
        assert any(
            finding.kind == "write-without-add"
            for finding in pmtest.findings
        )

    def test_empty_list_scenario_can_crash_recovery(self):
        """The paper's segfault analogue: length=1 persisted via the
        image while head rolls back to NULL -> pop dereferences NULL."""
        workload = LinkedListWorkload(
            recovery="naive", init_size=0, test_size=1,
            faults={"unlogged_length"},
        )
        report = XFDetector().run(workload)
        assert report.crashes, "pop on empty list should crash"


class TestFigure2:
    def test_buggy_valid_bit_produces_both_bug_classes(self):
        workload = ArrayBackupWorkload(
            test_size=2, faults={"swapped_valid"}
        )
        report = XFDetector().run(workload)
        kinds = {bug.kind for bug in report.bugs}
        assert BugKind.CROSS_FAILURE_RACE in kinds
        assert BugKind.CROSS_FAILURE_SEMANTIC in kinds

    def test_correct_valid_bit_is_clean(self):
        report = XFDetector().run(ArrayBackupWorkload(test_size=3))
        assert report.bugs == []
        assert report.stats.benign_races > 0  # valid-bit reads

    def test_baselines_miss_the_semantic_bug(self):
        """Figure 3: the pre-failure stage looks perfectly disciplined
        (all persists in place), so pre-failure-only tools see nothing;
        only cross-failure analysis catches it."""
        workload = ArrayBackupWorkload(
            test_size=2, faults={"swapped_valid"}
        )
        assert not PmemcheckBaseline().run(workload).has_findings
        assert not PMTestBaseline().run(workload).has_findings
        report = XFDetector().run(workload)
        assert report.semantic_bugs


class TestFigure11Walkthrough:
    """The worked example of Section 5.4, reconstructed literally:
    write backup; write valid (commit var, same epoch); CLWB covering
    both; SFENCE; write arr.  F1 must report a race on the backup, F2 a
    semantic bug on the (persisted, same-epoch-committed) backup."""

    def run_walkthrough(self):
        from repro.pmdk import ObjectPool, Struct, U64, I64, pmem
        from repro.workloads.base import Workload

        class Fig11Root(Struct):
            backup = I64()  # 0x...00
            valid = U64()  # 0x...08 (same cache line as backup)
            arr = I64()  # stand-in for arr[idx]

        class Fig11(Workload):
            name = "fig11"
            FAULTS = {}

            def setup(self, ctx):
                pool = ObjectPool.create(
                    ctx.memory, "f11", "f11", root_cls=Fig11Root
                )
                root = pool.root
                root.backup = 0
                root.valid = 0
                root.arr = 5
                pmem.persist(ctx.memory, root.address, Fig11Root.SIZE)

            def pre_failure(self, ctx):
                pool = ObjectPool.open(ctx.memory, "f11", "f11",
                                       Fig11Root)
                root = pool.root
                name = ctx.interface.add_commit_var(
                    root.field_addr("valid"), 8, "valid"
                )
                ctx.interface.add_commit_range(
                    name, root.field_addr("backup"), 8
                )
                memory = ctx.memory
                root.backup = root.arr  # WRITE 0x100
                root.valid = 0  # WRITE 0x110 (commit, same epoch)
                memory.flush(root.address, 16)  # CLWB covers both
                memory.fence()  # SFENCE  (F1 lands before this)
                root.arr = 99  # WRITE 0x200
                memory.flush(root.field_addr("arr"), 8)
                memory.fence()  # (F2 lands before this)

            def post_failure(self, ctx):
                pool = ObjectPool.open(ctx.memory, "f11", "f11",
                                       Fig11Root)
                root = pool.root
                ctx.interface.add_commit_var(
                    root.field_addr("valid"), 8, "valid"
                )
                _ = root.valid  # benign commit-variable read
                _ = root.backup  # the checked read

        return XFDetector(DetectorConfig()).run(Fig11())

    def test_f1_race_and_f2_semantic(self):
        report = self.run_walkthrough()
        assert report.stats.failure_points == 2
        races = {bug.failure_point for bug in report.races}
        semantics = {
            bug.failure_point for bug in report.semantic_bugs
        }
        assert races == {0}, report.format(unique=False)
        assert semantics == {1}, report.format(unique=False)
        # The valid-bit reads are benign at both failure points.
        assert report.stats.benign_races == 2
