"""Executor determinism: reports are byte-identical at any pool width.

The tentpole contract of ``repro.exec``: running the same workload with
``jobs=1`` (serial), ``jobs=4`` on the thread pool, and ``jobs=4`` on
the fork-based process pool yields identical bug lists, identical
stats, and identical NDJSON records — modulo wall-clock timings, which
are the *only* thing an executor is allowed to change.
"""

from repro.core import DetectorConfig, XFDetector
from repro.exec import ProcessExecutor
from repro.obs import run_records
from repro.workloads import HashmapAtomicWorkload, HashmapTxWorkload


def _run(jobs, executor, make_workload, **config_kwargs):
    config = DetectorConfig(
        jobs=jobs, executor=executor, **config_kwargs
    )
    return XFDetector(config).run(make_workload())


def _report_dict(report):
    """The full report, with the timing fields removed."""
    data = report.to_dict(unique=False)
    data["stats"] = {
        key: value for key, value in data["stats"].items()
        if not key.endswith("seconds")
    }
    return data


def _ndjson_records(report):
    """Schedule-independent NDJSON records: spans and timers measure
    wall-clock, ``exec.*`` metrics describe the pool itself — drop
    those, keep everything else byte-for-byte."""
    kept = []
    for record in run_records(report, unique=False):
        if record.get("type") == "span":
            continue
        if record.get("type") == "metric":
            if record.get("metric") == "timer":
                continue
            if record.get("name", "").startswith("exec."):
                continue
        if record.get("type") == "stats":
            record = {
                key: value for key, value in record.items()
                if not key.endswith("seconds")
            }
        kept.append(record)
    return kept


class CrashingRecovery(HashmapAtomicWorkload):
    """Recovery dereferences state that a mid-rehash crash corrupts —
    modelled bluntly: it raises, so every post run produces a
    POST_FAILURE_CRASH whose message must survive the pickle boundary
    byte-for-byte."""

    name = "crashing_recovery"

    def post_failure(self, ctx):
        raise ValueError("recovery exploded at bucket #7")


class TestExecutorDeterminism:
    def _compare(self, make_workload, **config_kwargs):
        reference = None
        for jobs, executor in [(1, "serial"), (4, "thread")] + (
            [(4, "process")] if ProcessExecutor.available() else []
        ):
            report = _run(
                jobs, executor, make_workload, **config_kwargs
            )
            snapshot = (
                _report_dict(report), _ndjson_records(report)
            )
            if reference is None:
                reference = snapshot
            else:
                assert snapshot[0] == reference[0], (
                    f"report differs under jobs={jobs} {executor}"
                )
                assert snapshot[1] == reference[1], (
                    f"NDJSON differs under jobs={jobs} {executor}"
                )
        return reference

    def test_racy_workload_with_variants(self):
        report_dict, _records = self._compare(
            lambda: HashmapAtomicWorkload(
                faults={"skip_persist_count"}, test_size=3
            ),
            crash_state_variants=3,
        )
        assert report_dict["bugs"], "fault should produce bugs"

    def test_transactional_workload(self):
        self._compare(
            lambda: HashmapTxWorkload(
                faults={"skip_add_count"}, test_size=3
            ),
        )

    def test_crash_messages_cross_process_boundary(self):
        report_dict, _records = self._compare(
            lambda: CrashingRecovery(test_size=2),
        )
        kinds = {bug["kind"] for bug in report_dict["bugs"]}
        assert "post-failure crash" in kinds
        assert any(
            "recovery exploded at bucket #7" in bug["detail"]
            for bug in report_dict["bugs"]
        )


class TestVariantPlanDeterminism:
    def test_variant_schedule_is_identical(self):
        """Every executor runs the exact same crash-state variants:
        the (fid, variant) sequence and each run's trace length match
        the serial schedule."""
        def collect(jobs, executor):
            config = DetectorConfig(
                jobs=jobs, executor=executor, crash_state_variants=3
            )
            from repro.core.frontend import Frontend

            result = Frontend(config).run(
                HashmapAtomicWorkload(
                    faults={"skip_persist_count"}, test_size=3
                )
            )
            return [
                (run.failure_point.fid, run.variant,
                 len(run.recorder))
                for run in result.post_runs
            ]

        reference = collect(1, "serial")
        assert collect(4, "thread") == reference
        if ProcessExecutor.available():
            assert collect(4, "process") == reference
        assert any(variant is not None for _f, variant, _n in reference)


class TestVariantExhaustion:
    def test_small_mask_spaces_skip_explicitly(self):
        """Asking for more crash states than the mask space holds
        records the shortfall instead of silently under-producing."""
        config = DetectorConfig(crash_state_variants=64)
        report = XFDetector(config).run(
            HashmapAtomicWorkload(
                faults={"skip_persist_count"}, test_size=2
            )
        )
        metrics = report.telemetry.metrics
        skipped = metrics.value("crash_variants_skipped")
        assert skipped > 0
        produced = metrics.value("post_runs") - (
            report.stats.failure_points
        )
        requested = 64 * report.stats.failure_points
        # Every requested variant is either produced or accounted for.
        assert produced + skipped <= requested
        assert report.stats.post_runs_analyzed == metrics.value(
            "post_runs"
        )


class TestFailFastAccounting:
    def test_orphaned_runs_are_counted(self):
        config = DetectorConfig(fail_fast=True)
        report = XFDetector(config).run(
            HashmapAtomicWorkload(
                faults={"skip_persist_count"}, test_size=3
            )
        )
        stats = report.stats
        total_runs = report.telemetry.metrics.value("post_runs")
        orphaned = report.telemetry.metrics.value("orphaned_post_runs")
        assert report.has_cross_failure_bugs
        assert stats.post_runs_analyzed < total_runs
        assert orphaned == total_runs - stats.post_runs_analyzed
        assert (
            report.to_dict()["stats"]["post_runs_analyzed"]
            == stats.post_runs_analyzed
        )

    def test_no_orphans_on_full_analysis(self):
        report = XFDetector(DetectorConfig()).run(
            HashmapAtomicWorkload(test_size=2)
        )
        assert report.telemetry.metrics.value("orphaned_post_runs") == 0
        assert (
            report.stats.post_runs_analyzed
            == report.telemetry.metrics.value("post_runs")
        )


class TestCheckpointedEqualsInterleaved:
    def test_audit_schedule_matches_checkpointed_reports(self):
        """The audit run (interleaved legacy schedule) and the default
        checkpointed schedule produce identical bug lists."""
        make = lambda: HashmapAtomicWorkload(
            faults={"skip_persist_count"}, test_size=3
        )
        checkpointed = XFDetector(DetectorConfig()).run(make())
        interleaved = XFDetector(DetectorConfig(audit=True)).run(make())
        assert (
            _report_dict(checkpointed)["bugs"]
            == _report_dict(interleaved)["bugs"]
        )
