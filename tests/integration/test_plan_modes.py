"""End-to-end validation of mechanism-driven crash plans (ISSUE 7).

Acceptance bar: with ``DetectorConfig.plan_mode="mechanism"``,
detection reproduces the exhaustive run's bug reports exactly while
executing at least 3x fewer failure points on at least two Table 4
workloads; the plan/exhaustive delta is visible in the run stats; and
every seeded bug the suite knows about survives the collapse.
"""

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.errors import DetectorError
from repro.workloads import ALL_WORKLOADS


def _run(workload, plan_mode="exhaustive", faults=(), **params):
    cls = ALL_WORKLOADS[workload]
    instance = cls(faults=frozenset(faults), **params)
    config = DetectorConfig(plan_mode=plan_mode, progress=False)
    return XFDetector(config).run(instance)


def _bugset(report):
    # Stringified keys: BugKind members do not define an ordering.
    return sorted(
        str(bug.dedup_key()) for bug in report.unique_bugs()
    )


class TestReductionFloor:
    """>= 3x fewer executed failure points, zero missed bugs."""

    @pytest.mark.parametrize("workload,params", [
        ("ctree", dict(init_size=0, test_size=16)),
        ("rbtree", dict(init_size=0, test_size=12)),
    ])
    def test_three_x_reduction_same_bugs(self, workload, params):
        baseline = _run(workload, **params)
        planned = _run(workload, plan_mode="mechanism", **params)
        assert _bugset(planned) == _bugset(baseline)
        stats = planned.stats
        assert stats.plan_mode == "mechanism"
        assert stats.failure_points == baseline.stats.failure_points
        assert stats.failure_points_executed > 0
        ratio = stats.failure_points / stats.failure_points_executed
        assert ratio >= 3.0, (
            f"{workload}: only {ratio:.2f}x reduction "
            f"({stats.failure_points_executed} of "
            f"{stats.failure_points} executed)"
        )

    def test_delta_reported_in_stats(self):
        report = _run("btree", plan_mode="mechanism",
                      init_size=0, test_size=8)
        stats = report.stats
        assert (
            stats.failure_points_executed
            + stats.failure_points_skipped_by_plan
            == stats.failure_points
        )
        assert stats.failure_points_skipped_by_plan > 0
        payload = report.to_dict()["stats"]
        assert payload["plan_mode"] == "mechanism"
        assert (
            payload["failure_points_skipped_by_plan"]
            == stats.failure_points_skipped_by_plan
        )

    def test_exhaustive_mode_executes_everything(self):
        report = _run("btree", init_size=0, test_size=4)
        stats = report.stats
        assert stats.plan_mode == "exhaustive"
        assert stats.failure_points_executed == stats.failure_points
        assert stats.failure_points_skipped_by_plan == 0


class TestSoundness:
    """Plans must never change what is reported, only what runs."""

    @pytest.mark.parametrize("workload", [
        "btree", "ctree", "rbtree", "hashmap_tx", "hashmap_atomic",
    ])
    @pytest.mark.parametrize("mode", ["mechanism", "hybrid"])
    def test_clean_structures_identical_reports(self, workload, mode):
        params = dict(init_size=2, test_size=3)
        baseline = _run(workload, **params)
        planned = _run(workload, plan_mode=mode, **params)
        assert _bugset(planned) == _bugset(baseline)

    def test_seeded_mechanism_bugs_survive_the_collapse(self):
        from repro.bugsuite import build_workload, mech_bug_entries

        def detect(bug, mode):
            # One construction/run site: mechanism-store bug ips
            # resolve to the calling frame, so both runs must share it
            # for dedup keys to compare equal.
            config = DetectorConfig(plan_mode=mode)
            return XFDetector(config).run(build_workload(bug))

        for bug in mech_bug_entries():
            baseline = detect(bug, "exhaustive")
            planned = detect(bug, "mechanism")
            assert _bugset(planned) == _bugset(baseline), str(bug)
            assert any(
                found.kind is bug.expected_kind
                for found in planned.bugs
            ), str(bug)

    def test_faulted_table4_run_identical_reports(self):
        faults = ["skip_add_count"]
        baseline = _run("ctree", faults=faults,
                        init_size=2, test_size=3)
        planned = _run("ctree", plan_mode="mechanism", faults=faults,
                       init_size=2, test_size=3)
        assert _bugset(planned) == _bugset(baseline)
        assert planned.bugs


class TestConfigSurface:
    def test_unknown_plan_mode_raises(self):
        with pytest.raises(DetectorError):
            _run("btree", plan_mode="bogus", init_size=0, test_size=1)

    def test_plan_telemetry_gauges(self):
        report = _run("ctree", plan_mode="mechanism",
                      init_size=0, test_size=8)
        metrics = report.telemetry.metrics
        assert metrics.value("plans_emitted") > 0
        assert (
            metrics.value("plans_pruned_vs_exhaustive")
            == report.stats.failure_points_skipped_by_plan
        )
