"""Tests for region-of-interest confinement (paper Table 2 / §6.1:
'select the code region that performs updates to PM objects as the
pre-failure RoI and the region that performs recovery as the
post-failure RoI for larger real-world workloads')."""

from repro.core import DetectorConfig, XFDetector
from repro.pmdk import I64, ObjectPool, Struct, pmem
from repro.workloads.base import Workload


class RoIRoot(Struct):
    inside = I64()
    outside = I64()


class RoIWorkload(Workload):
    """Leaves `outside` unpersisted outside the RoI and `inside`
    unpersisted inside it; only the latter may be reported."""

    name = "roi-demo"
    uses_roi = True

    def setup(self, ctx):
        pool = ObjectPool.create(ctx.memory, "roi", "roi",
                                 root_cls=RoIRoot)
        root = pool.root
        root.inside = 0
        root.outside = 0
        pmem.persist(ctx.memory, root.address, RoIRoot.SIZE)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "roi", "roi", RoIRoot)
        root = pool.root
        memory = ctx.memory
        # Outside the RoI: sloppy code the user chose not to test.
        root.outside = 1
        pmem.persist(memory, root.field_addr("inside"), 8)  # fp bait
        ctx.interface.roi_begin()
        root.inside = 2  # never persisted: the bug under test
        pmem.persist(memory, root.address, 8)
        root.inside = 3
        pmem.persist(memory, root.field_addr("inside"), 8)
        ctx.interface.roi_end()
        # Outside again: more unpersisted writes, more fences.
        root.outside = 4
        pmem.persist(memory, root.field_addr("inside"), 8)

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "roi", "roi", RoIRoot)
        root = pool.root
        ctx.interface.roi_begin()
        _ = root.inside
        ctx.interface.roi_end()
        _ = root.outside  # read outside the post RoI: unchecked


class TestRoIConfinement:
    def run(self):
        return XFDetector(DetectorConfig()).run(RoIWorkload())

    def test_failure_points_only_inside_pre_roi(self):
        report = self.run()
        # Two persists inside the RoI -> exactly two failure points.
        assert report.stats.failure_points == 2

    def test_only_roi_reads_checked(self):
        report = self.run()
        # `inside` is reported (written in RoI, read in post RoI);
        # `outside` never is, although it is equally unpersisted.
        flagged = {bug.address for bug in report.races}
        assert len(flagged) == 1
        assert "roi-demo" in report.format()

    def test_roi_less_post_read_of_outside_not_flagged(self):
        report = self.run()
        # All flagged addresses must be the `inside` field: offset 0 of
        # the root object.
        for bug in report.races:
            # The two fields are 8 bytes apart; `outside` is at +8.
            assert bug.address % 16 == 0, bug
