"""The detection service end-to-end: sharded jobs, crash recovery,
reclamation, drain, and the REST API.

The contract under test is the service's acceptance matrix:

* a job sharded over the fleet produces a merged report **byte-
  identical** to the one-shot pipeline — including when the daemon is
  killed mid-job and a fresh scheduler resumes from the journals
  (two workloads);
* an injected shard death (SIGKILL) and a hang (SIGSTOP under a
  short heartbeat timeout) both end in DONE or DEGRADED — never a
  silently incomplete report;
* a drain journals in-flight work so a new scheduler finishes the
  job, byte-identically;
* the REST API (serve/submit/status/report/events/metrics/drain)
  works over a real daemon process.

Scheduler tests run the loop in-process (stepping it directly makes
crash points deterministic); only the API test forks a real daemon.
The scheduler's blocking command API must never be called from the
loop thread (it would deadlock on its own reply event), so these
tests enqueue ``_Command`` objects and ``step()`` by hand.
"""

import json
import os
import signal
import time
import urllib.request

import pytest

from repro.core import XFDetector
from repro.exec.pool import ProcessExecutor
from repro.service import FleetSettings, JobStore, Reaper
from repro.service.scheduler import Scheduler, _Command
from repro.service.spec import JobSpec

pytestmark = pytest.mark.skipif(
    not ProcessExecutor.available(), reason="fork start method required"
)

HASHMAP = {
    "workload": "hashmap_atomic",
    "faults": ["bug1_unpersisted_create"],
    "test_size": 3,
    "shards": 2,
}
BTREE = {"workload": "btree", "faults": [], "test_size": 3,
         "shards": 3}


def _oneshot(spec_dict):
    """The reference report of the plain one-shot pipeline."""
    spec = JobSpec.from_dict(spec_dict)
    report = XFDetector(spec.detector_config()).run(
        spec.build_workload()
    )
    text = report.format(unique=True)
    if not text.endswith("\n"):
        text += "\n"
    return text, json.loads(report.to_json(unique=True))


def _detection_view(payload):
    """The detection-relevant slice of a JSON report: bugs and plan
    accounting, not scheduling counters (a journal-resumed merge
    legitimately executes fewer points than the one-shot run) or
    timings."""
    return {
        "workload": payload["workload"],
        "bugs": payload["bugs"],
        "degraded": payload["degraded"],
        "failure_points": payload["stats"]["failure_points"],
        "benign_races": payload["stats"]["benign_races"],
    }


def _scheduler(tmp_path, **kwargs):
    settings = kwargs.pop("settings", None) or FleetSettings(
        workers=2, shard_jobs=1
    )
    store = JobStore(str(tmp_path))
    scheduler = Scheduler(store, settings, **kwargs)
    scheduler.start()
    return store, scheduler


def _submit(scheduler, spec_dict):
    command = _Command("submit", spec_dict)
    scheduler._commands.put(command)
    scheduler.step(poll=0.05)
    if command.error is not None:
        raise command.error
    return command.result


def _run_until(scheduler, store, job_id, condition, max_seconds=180,
               poll=0.1):
    deadline = time.monotonic() + max_seconds
    while time.monotonic() < deadline:
        scheduler.step(poll=poll)
        record = store.load(job_id)
        if condition(record):
            return record
    raise AssertionError(
        f"condition not reached for {job_id}; last record: "
        f"{store.load(job_id).to_dict()}"
    )


def _crash(scheduler):
    """Simulate a daemon crash: SIGKILL the fleet, drop the loop."""
    for worker in list(scheduler.fleet._workers):
        worker.process.kill()
        worker.process.join(5.0)
    scheduler.fleet._workers = []
    scheduler.telemetry.close()


def _shard_victim(scheduler):
    """The fleet worker currently running a shard task."""
    for worker in scheduler.fleet.busy_workers():
        if worker.task and worker.task["kind"] == "shard":
            return worker
    raise AssertionError("no shard in flight")


def _assert_identical(store, job_id, spec_dict):
    text, payload = _oneshot(spec_dict)
    with open(store.report_path(job_id, "text")) as handle:
        assert handle.read() == text
    with open(store.report_path(job_id, "json")) as handle:
        merged = json.load(handle)
    assert _detection_view(merged) == _detection_view(payload)


class TestShardedJobs:
    def test_job_completes_and_matches_oneshot(self, tmp_path):
        store, scheduler = _scheduler(tmp_path)
        try:
            job_id = _submit(scheduler, HASHMAP)
            record = _run_until(
                scheduler, store, job_id, lambda r: r.finished
            )
            assert record.state == "DONE"
            assert record.planned_points > 0
            assert all(s.status == "done" for s in record.shards)
        finally:
            scheduler.close()
        _assert_identical(store, job_id, HASHMAP)

    def test_restart_mid_job_two_workloads(self, tmp_path):
        """Kill the daemon mid-job; a fresh scheduler resumes both
        jobs from their journals to byte-identical reports."""
        store, scheduler = _scheduler(
            tmp_path,
            settings=FleetSettings(workers=2, shard_jobs=2),
        )
        try:
            first = _submit(scheduler, HASHMAP)
            second = _submit(scheduler, BTREE)
            # Let the first job make real progress (some shard
            # journaled) but crash before everything finished.
            _run_until(
                scheduler, store, first,
                lambda r: any(s.status == "done" for s in r.shards)
                or r.finished,
            )
        except BaseException:
            scheduler.close()
            raise
        _crash(scheduler)

        store2, scheduler2 = _scheduler(
            tmp_path,
            settings=FleetSettings(workers=2, shard_jobs=2),
        )
        try:
            # Recovery happened in start(): both jobs reloaded,
            # running shards requeued.
            for job_id in (first, second):
                record = _run_until(
                    scheduler2, store2, job_id,
                    lambda r: r.finished,
                )
                assert record.state == "DONE"
        finally:
            scheduler2.close()
        _assert_identical(store2, first, HASHMAP)
        _assert_identical(store2, second, BTREE)

    def test_shard_sigkill_never_silent_loss(self, tmp_path):
        """SIGKILL a fleet worker mid-shard: the scheduler sees the
        death, requeues the shard, and the job still ends DONE with
        the exact one-shot report."""
        store, scheduler = _scheduler(tmp_path)
        try:
            job_id = _submit(scheduler, HASHMAP)
            _run_until(
                scheduler, store, job_id,
                lambda r: any(
                    s.status == "running" for s in r.shards
                ),
            )
            victim = _shard_victim(scheduler)
            shard_id = victim.task["shard_id"]
            os.kill(victim.process.pid, signal.SIGKILL)
            record = _run_until(
                scheduler, store, job_id, lambda r: r.finished
            )
            assert record.state in ("DONE", "DEGRADED")
            killed = record.shard(shard_id)
            assert killed.attempts + killed.reclaims >= 2
        finally:
            scheduler.close()
        if record.state == "DONE":
            _assert_identical(store, job_id, HASHMAP)
        # Never silent loss: the merged report covers the whole plan.
        with open(store.report_path(job_id, "json")) as handle:
            merged = json.load(handle)
        assert merged["stats"]["failure_points"] == \
            record.planned_points

    def test_hang_is_reclaimed(self, tmp_path):
        """SIGSTOP a shard worker: heartbeats stop, the reaper kills
        and requeues it, and the job still completes."""
        store, scheduler = _scheduler(
            tmp_path,
            reaper=Reaper(heartbeat_timeout=1.0,
                          max_shard_retries=2, backoff_base=0.1),
        )
        spec = dict(HASHMAP, shards=1)
        try:
            job_id = _submit(scheduler, spec)
            _run_until(
                scheduler, store, job_id,
                lambda r: any(
                    s.status == "running" for s in r.shards
                ),
            )
            victim = _shard_victim(scheduler)
            os.kill(victim.process.pid, signal.SIGSTOP)
            record = _run_until(
                scheduler, store, job_id, lambda r: r.finished
            )
            assert record.state in ("DONE", "DEGRADED")
            assert record.shard(0).reclaims >= 1
        finally:
            scheduler.close()
        if record.state == "DONE":
            _assert_identical(store, job_id, spec)

    def test_abandoned_shard_degrades_then_merge_recovers(
            self, tmp_path):
        """A shard over its reclaim budget is abandoned and the job
        degrades — but the merge run re-executes the abandoned range
        live, so the job recovers to DONE with a complete,
        byte-identical report."""
        store, scheduler = _scheduler(
            tmp_path,
            reaper=Reaper(heartbeat_timeout=1.0,
                          max_shard_retries=0, backoff_base=0.1),
        )
        try:
            job_id = _submit(scheduler, HASHMAP)
            _run_until(
                scheduler, store, job_id,
                lambda r: any(
                    s.status == "running" for s in r.shards
                ),
            )
            victim = _shard_victim(scheduler)
            shard_id = victim.task["shard_id"]
            os.kill(victim.process.pid, signal.SIGSTOP)
            record = _run_until(
                scheduler, store, job_id, lambda r: r.finished
            )
            assert record.shard(shard_id).status == "abandoned"
            assert record.state == "DONE"
        finally:
            scheduler.close()
        _assert_identical(store, job_id, HASHMAP)

    def test_cancel(self, tmp_path):
        store, scheduler = _scheduler(tmp_path)
        try:
            job_id = _submit(scheduler, HASHMAP)
            command = _Command("cancel", job_id)
            scheduler._commands.put(command)
            scheduler.step(poll=0.05)
            assert command.error is None
            record = store.load(job_id)
            assert record.state == "CANCELLED" and record.finished
        finally:
            scheduler.close()


class TestDrain:
    def test_drain_journals_and_resume_completes(self, tmp_path):
        store, scheduler = _scheduler(tmp_path)
        try:
            job_id = _submit(scheduler, HASHMAP)
            _run_until(
                scheduler, store, job_id,
                lambda r: any(
                    s.status == "running" for s in r.shards
                ),
            )
            scheduler._commands.put(_Command("drain", None))
            deadline = time.monotonic() + 90
            while not scheduler.drained and \
                    time.monotonic() < deadline:
                scheduler.step(poll=0.1)
            assert scheduler.drained
        finally:
            scheduler.close()

        record = store.load(job_id)
        assert not record.finished  # drained mid-job, not lost
        assert all(
            s.status in ("pending", "done") for s in record.shards
        )
        with open(store.prom_path()) as handle:
            assert "xfd_service_drain_seconds" in handle.read()

        store2, scheduler2 = _scheduler(tmp_path)
        try:
            record = _run_until(
                scheduler2, store2, job_id, lambda r: r.finished
            )
            assert record.state == "DONE"
        finally:
            scheduler2.close()
        _assert_identical(store2, job_id, HASHMAP)

    def test_drain_refuses_new_jobs(self, tmp_path):
        from repro.service.spec import SpecError

        store, scheduler = _scheduler(tmp_path)
        try:
            drain = _Command("drain", None)
            refused = _Command("submit", HASHMAP)
            scheduler._commands.put(drain)
            scheduler._commands.put(refused)
            scheduler.step(poll=0.05)
            assert drain.result is True
            assert isinstance(refused.error, SpecError)
        finally:
            scheduler.close()


class TestServiceGauges:
    def test_prom_textfile_has_fleet_gauges(self, tmp_path):
        store, scheduler = _scheduler(tmp_path)
        try:
            job_id = _submit(scheduler, HASHMAP)
            _run_until(
                scheduler, store, job_id, lambda r: r.finished
            )
        finally:
            scheduler.close()
        with open(store.prom_path()) as handle:
            text = handle.read()
        for gauge in (
            "xfd_service_jobs_active",
            "xfd_service_shards_inflight",
            "xfd_service_fleet_workers",
        ):
            assert gauge in text


class TestServiceDaemonHTTP:
    def test_rest_roundtrip(self, tmp_path):
        """One real daemon process: submit over HTTP, read status,
        report, events, and metrics, then drain via the API and
        check the clean exit."""
        import subprocess
        import sys

        repo = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--state-dir", str(tmp_path), "--workers", "2"],
            env=env, cwd=repo,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            url = self._wait_for_daemon(tmp_path)
            health = self._get_json(url + "/healthz")
            assert health["ok"] is True

            body = json.dumps(HASHMAP).encode()
            request = urllib.request.Request(
                url + "/api/v1/jobs", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                job_id = json.loads(resp.read())["job_id"]

            deadline = time.monotonic() + 180
            while time.monotonic() < deadline:
                record = self._get_json(
                    f"{url}/api/v1/jobs/{job_id}"
                )
                if record["finished"]:
                    break
                time.sleep(0.3)
            assert record["state"] == "DONE"

            with urllib.request.urlopen(
                f"{url}/api/v1/jobs/{job_id}/report?format=text",
                timeout=30,
            ) as resp:
                text = resp.read().decode()
            reference, _payload = _oneshot(HASHMAP)
            assert text == reference

            with urllib.request.urlopen(
                f"{url}/api/v1/jobs/{job_id}/events", timeout=30
            ) as resp:
                kinds = [
                    json.loads(line)["kind"]
                    for line in resp.read().decode().splitlines()
                    if line.strip()
                ]
            assert "run_started" in kinds
            assert "run_finished" in kinds

            with urllib.request.urlopen(
                url + "/metrics", timeout=30
            ) as resp:
                metrics = resp.read().decode()
            assert "xfd_service_fleet_workers" in metrics

            drain = urllib.request.Request(
                url + "/api/v1/drain", data=b"{}",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(drain, timeout=30) as resp:
                assert json.loads(resp.read())["draining"] is True
            assert proc.wait(timeout=90) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def _wait_for_daemon(self, state_dir, timeout=30):
        from repro.service.daemon import daemon_alive, read_daemon_info

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            info = read_daemon_info(str(state_dir))
            if daemon_alive(info):
                return info["url"]
            time.sleep(0.2)
        raise AssertionError("daemon never came up")

    def _get_json(self, url):
        with urllib.request.urlopen(url, timeout=30) as resp:
            return json.loads(resp.read())
