"""Validate the static analyzer against the synthetic bug corpus.

Every fault in ``repro.analysis.groundtruth.STATIC_EXPECTATIONS`` that
is statically detectable must be flagged with exactly the expected
rule ids at the canonical lint sizing; dynamic-only faults and clean
workloads must produce zero interpreter findings (no false positives).
The full static-vs-dynamic coverage split is recorded by
``benchmarks/bench_static_coverage.py``.
"""

import pytest

from repro.analysis import analyze_workload, expected_rules
from repro.analysis.groundtruth import (
    CANONICAL_PARAMS,
    STATIC_EXPECTATIONS,
    dynamic_only,
    statically_detectable,
)
from repro.workloads import ALL_WORKLOADS


def _analyze(workload, flags=()):
    cls = ALL_WORKLOADS[workload]
    params = dict(CANONICAL_PARAMS)
    instance = cls(faults=frozenset(flags), **params)
    return analyze_workload(instance)


class TestStaticallyDetectableFaults:
    @pytest.mark.parametrize(
        "workload,flag",
        sorted(statically_detectable()),
        ids=lambda value: str(value),
    )
    def test_fault_is_flagged_with_expected_rules(self, workload,
                                                  flag):
        report = _analyze(workload, [flag])
        got = {f.rule for f in report.findings}
        assert got == set(expected_rules(workload, flag))
        # Provenance: every finding points into real source.
        for finding in report.findings:
            assert finding.file.endswith(".py")
            assert finding.line > 0


class TestNoFalsePositives:
    @pytest.mark.parametrize("workload", sorted(ALL_WORKLOADS))
    def test_clean_workload_has_zero_findings(self, workload):
        report = _analyze(workload)
        assert report.findings == []
        assert not report.stats.incomplete

    # Dynamic-only faults alter runtime behaviour in ways the
    # interpreter's certification model deliberately tolerates; they
    # must not be misflagged.  A representative slice keeps suite
    # runtime bounded; the benchmark sweeps all of them.
    SPOT = [
        ("hashmap_tx", "count_outside_tx"),
        ("hashmap_atomic", "bug2_uninit_count"),
        ("hashmap_atomic", "skip_dirty_set"),
        ("memcached", "skip_persist_item"),
        ("array_backup", "swapped_valid"),
        ("queue", "tail_before_slot"),
    ]

    @pytest.mark.parametrize("workload,flag", SPOT,
                             ids=lambda value: str(value))
    def test_dynamic_only_fault_has_zero_findings(self, workload,
                                                  flag):
        assert (workload, flag) in STATIC_EXPECTATIONS
        assert not expected_rules(workload, flag)
        report = _analyze(workload, [flag])
        assert report.findings == []


class TestExpectationTableShape:
    def test_partition_is_total_and_disjoint(self):
        detectable = set(statically_detectable())
        dyn = set(dynamic_only())
        assert detectable | dyn == set(STATIC_EXPECTATIONS)
        assert not detectable & dyn

    def test_registry_faults_are_all_classified(self):
        from repro.bugsuite.registry import bug_entries

        for bug in bug_entries():
            assert (bug.workload, bug.flag) in STATIC_EXPECTATIONS
