"""End-to-end validation of Silhouette-style static pruning.

Acceptance bar: with ``DetectorConfig.static_prune`` on, detection on
all five PMDK structures reproduces the same bug reports while
executing strictly fewer failure points, with the pruned count visible
in telemetry (``injector.pruned_static``).
"""

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.workloads import ALL_WORKLOADS

FIVE_STRUCTURES = [
    "btree", "ctree", "rbtree", "hashmap_tx", "hashmap_atomic",
]
PARAMS = dict(init_size=2, test_size=3)


def _run(workload, faults=(), static_prune=False, **params):
    cls = ALL_WORKLOADS[workload]
    instance = cls(faults=frozenset(faults), **params)
    config = DetectorConfig(static_prune=static_prune)
    return XFDetector(config).run(instance)


def _bugset(report):
    return {
        (bug.kind.name, str(bug.reader_ip), str(bug.writer_ip),
         bug.detail)
        for bug in report.unique_bugs()
    }


class TestPruneOnCleanStructures:
    @pytest.mark.parametrize("workload", FIVE_STRUCTURES)
    def test_same_bugs_strictly_fewer_failure_points(self, workload):
        baseline = _run(workload, **PARAMS)
        pruned = _run(workload, static_prune=True, **PARAMS)
        assert _bugset(pruned) == _bugset(baseline)
        assert (
            pruned.stats.failure_points
            < baseline.stats.failure_points
        )

    @pytest.mark.parametrize("workload", FIVE_STRUCTURES)
    def test_pruned_count_surfaces_in_telemetry(self, workload):
        report = _run(workload, static_prune=True, **PARAMS)
        metrics = report.telemetry.metrics
        assert metrics.value("injector.pruned_static") > 0
        assert metrics.value("analysis.certified_lines") > 0
        assert metrics.value("analysis.findings") == 0


class TestPruneOnFaultyRuns:
    def test_statically_detectable_fault_disables_pruning(self):
        # A workload the analyzer already flags must not be pruned at
        # all: flagged code can leave data unpersisted arbitrarily
        # early, so every later window is vulnerable.
        baseline = _run("hashmap_tx",
                        faults=["unpersisted_create_seed"], **PARAMS)
        pruned = _run("hashmap_tx", faults=["unpersisted_create_seed"],
                      static_prune=True, **PARAMS)
        assert _bugset(pruned) == _bugset(baseline)
        assert (
            pruned.stats.failure_points
            == baseline.stats.failure_points
        )
        metrics = pruned.telemetry.metrics
        assert metrics.value("injector.pruned_static") == 0

    def test_dynamic_only_fault_in_tx_code_keeps_its_bugs(self):
        from repro.bugsuite.registry import bug_entries

        (bug,) = [
            entry for entry in bug_entries(workload="hashmap_tx")
            if entry.flag == "skip_add_prev_next"
        ]
        baseline = _run("hashmap_tx", faults=[bug.flag], **bug.params)
        pruned = _run("hashmap_tx", faults=[bug.flag],
                      static_prune=True, **bug.params)
        assert _bugset(baseline)  # the fault does produce bugs
        assert _bugset(pruned) == _bugset(baseline)
        assert (
            pruned.stats.failure_points
            < baseline.stats.failure_points
        )


class TestPruneConfigPlumbing:
    def test_prune_off_by_default(self):
        report = _run("linkedlist", init_size=1, test_size=1)
        metrics = report.telemetry.metrics
        assert metrics.value("injector.pruned_static") == 0
        assert metrics.value("analysis.certified_lines") == 0

    def test_forced_failure_points_are_never_pruned(self):
        from repro.analysis.pruning import PrunePlan
        from repro.core.injector import FailureInjector

        class _Memory:
            detection_complete = False
            roi_active = True
            skip_failure_depth = 0

            def __init__(self):
                self.recorder = []

            def emit_marker(self, kind, info=""):
                pass

            def snapshot_images(self):
                return []

        config = DetectorConfig()
        plan = PrunePlan([])  # certifies nothing... and yet:
        injector = FailureInjector(config, prune_plan=plan)
        memory = _Memory()
        injector.before_ordering_point(memory, "forced", force=True)
        injector.before_ordering_point(memory, "forced", force=True)
        assert len(injector.failure_points) == 2
        assert injector.pruned_static == 0
