"""Validation integration tests: the Table 5 synthetic suite, the four
new bugs, the baseline coverage matrix (Figure 3), and the Table 1
mechanisms."""

import pytest

from repro.baselines import PmemcheckBaseline, PMTestBaseline
from repro.bugsuite import (
    NEW_BUGS,
    SUITE_ADDITIONAL,
    SUITE_PMTEST,
    bug_entries,
    build_workload,
    expected_counts,
    run_bug,
)
from repro.core import BugKind, DetectorConfig, XFDetector
from repro.mechanisms import MECHANISMS, MechanismWorkload
from repro.workloads import ALL_WORKLOADS


class TestTable5Counts:
    """The registry must reproduce the paper's Table 5 matrix."""

    PAPER_TABLE5 = {
        "btree": {"pmtest_R": 8, "pmtest_P": 2, "add_R": 4, "add_S": 0},
        "ctree": {"pmtest_R": 5, "pmtest_P": 1, "add_R": 1, "add_S": 0},
        "rbtree": {"pmtest_R": 7, "pmtest_P": 1, "add_R": 1, "add_S": 0},
        "hashmap_tx": {
            "pmtest_R": 6, "pmtest_P": 1, "add_R": 3, "add_S": 0,
        },
        "hashmap_atomic": {
            "pmtest_R": 10, "pmtest_P": 2, "add_R": 3, "add_S": 4,
        },
    }

    def test_registry_matches_paper(self):
        counts = expected_counts()
        for workload, row in self.PAPER_TABLE5.items():
            got = counts[workload]
            assert got.get((SUITE_PMTEST, "R"), 0) == row["pmtest_R"]
            assert got.get((SUITE_PMTEST, "P"), 0) == row["pmtest_P"]
            assert got.get((SUITE_ADDITIONAL, "R"), 0) == row["add_R"]
            assert got.get((SUITE_ADDITIONAL, "S"), 0) == row["add_S"]


@pytest.mark.parametrize(
    "bug", bug_entries(), ids=[str(b) for b in bug_entries()]
)
def test_every_synthetic_bug_detected(bug):
    """Section 6.3.1: XFDetector detects every synthetic bug, with the
    expected bug class."""
    _report, detected = run_bug(bug)
    assert detected, f"{bug} not detected"


@pytest.mark.parametrize(
    "scenario", NEW_BUGS, ids=[f"bug{s.number}" for s in NEW_BUGS]
)
def test_new_bugs_detected(scenario):
    """Section 6.3.2: the four new bugs are found."""
    report, detected = scenario.run()
    assert detected, report.format()


class TestNoFalsePositives:
    """Correct builds of every workload produce zero reports."""

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_correct_workload_clean(self, name):
        cls = ALL_WORKLOADS[name]
        if name == "linkedlist":
            workload = cls(recovery="alt", init_size=2, test_size=2)
        elif name == "array_backup":
            workload = cls(test_size=3)
        else:
            workload = cls(init_size=2, test_size=3)
        report = XFDetector().run(workload)
        assert report.bugs == [], report.format()

    @pytest.mark.parametrize(
        "store_cls", list(MECHANISMS),
        ids=[s.mechanism_name for s in MECHANISMS],
    )
    def test_correct_mechanism_clean(self, store_cls):
        report = XFDetector().run(
            MechanismWorkload(store_cls, test_size=3)
        )
        assert report.bugs == [], report.format()


class TestTable1Mechanisms:
    """Each mechanism's buggy build violates its own consistency rule
    and is caught with the expected bug class."""

    KIND = {
        "R": BugKind.CROSS_FAILURE_RACE,
        "S": BugKind.CROSS_FAILURE_SEMANTIC,
    }

    @pytest.mark.parametrize(
        "store_cls", list(MECHANISMS),
        ids=[s.mechanism_name for s in MECHANISMS],
    )
    def test_buggy_mechanism_detected(self, store_cls):
        for flag, (code, _description) in store_cls.FAULTS.items():
            report = XFDetector().run(
                MechanismWorkload(
                    store_cls, faults={flag}, test_size=4
                )
            )
            assert any(
                bug.kind is self.KIND[code] for bug in report.bugs
            ), f"{store_cls.mechanism_name}:{flag} missed"


class TestFigure3Coverage:
    """Pre-failure-only tools vs. XFDetector on three scenario types."""

    def scenarios(self):
        from repro.workloads import (
            ArrayBackupWorkload,
            HashmapAtomicWorkload,
            LinkedListWorkload,
        )

        return {
            # (pre-failure bug visible to baselines, cross-failure race)
            "race": LinkedListWorkload(
                recovery="naive", init_size=2, test_size=1,
                faults={"unlogged_length"},
            ),
            # pre-failure code looks clean; only post-failure reveals it
            "semantic": HashmapAtomicWorkload(
                faults={"swapped_dirty"}, init_size=2, test_size=3,
            ),
            # correct program that pre-failure tools flag anyway
            "false-positive": LinkedListWorkload(
                recovery="alt", init_size=2, test_size=1,
                faults={"unlogged_length"},
            ),
        }

    def test_coverage_matrix(self):
        scenarios = self.scenarios()

        race = XFDetector().run(scenarios["race"])
        assert race.has_cross_failure_bugs

        semantic = XFDetector().run(scenarios["semantic"])
        assert semantic.semantic_bugs
        assert not PMTestBaseline().run(
            scenarios["semantic"]
        ).has_findings
        assert not PmemcheckBaseline().run(
            scenarios["semantic"]
        ).has_findings

        fp = scenarios["false-positive"]
        assert not XFDetector().run(fp).bugs
        assert PMTestBaseline().run(fp).has_findings
