"""The warm persistent pool end-to-end (repro.exec.pool + shm).

Four guarantees: (a) warm-pool runs report byte-identically to serial
at any batch size, including across forced failure points, dedup class
boundaries, and a journal resume that lands mid-batch; (b) every
shared-memory segment a run publishes is unlinked by the time the run
returns — on normal exit, on PhaseSupervisor quarantine, and on chaos
worker death; (c) faults under the warm pool degrade exactly like the
cold pool (typed incidents, quarantine-and-continue, never an abort);
(d) long-lived workers actually amortize (reuse + batching metrics).
"""

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.errors import HarnessError
from repro.exec.pool import ProcessExecutor
from repro.exec.shm import live_segments
from repro.pm.pool import PMPool
from repro.resilience import IncidentKind
from repro.workloads import HashmapAtomicWorkload
from repro.workloads.base import Workload

pytestmark = pytest.mark.skipif(
    not ProcessExecutor.available(), reason="fork start method required"
)


def _workload(test_size=3):
    return HashmapAtomicWorkload(
        faults={"skip_persist_count"}, test_size=test_size
    )


def _run(workload=None, **config_kwargs):
    config_kwargs.setdefault("retry_backoff", 0.0)
    config = DetectorConfig(**config_kwargs)
    detector = XFDetector(config)
    report = detector.run(
        workload if workload is not None else _workload()
    )
    return report, detector


def _report_dict(report):
    data = report.to_dict(unique=False)
    data["stats"] = {
        key: value for key, value in data["stats"].items()
        if not key.endswith("seconds")
    }
    return data


def _bugs_by_point(report):
    by_point = {}
    for bug in report.to_dict(unique=False)["bugs"]:
        by_point.setdefault(bug["failure_point"], []).append(bug)
    return by_point


class BurstWorkload(Workload):
    """Forced failure-point bursts between real persists.

    Each burst's points share one crash image (a dedup class), and the
    persists between bursts are class boundaries — so any batch wider
    than a burst straddles a boundary, and every batch contains forced
    (never-pruned) points.  The unpersisted sentinel store makes the
    recovery read a cross-failure race, so bug provenance per fid is
    also exercised.
    """

    name = "burst"

    def setup(self, ctx):
        ctx.memory.map_pool(PMPool("p", 1 << 20))

    def pre_failure(self, ctx):
        memory = ctx.memory
        base = memory.pool_named("p").base
        for step in range(self.test_size):
            address = base + 64 * step
            memory.store(address, step.to_bytes(8, "little"))
            memory.flush(address, 8)
            memory.fence()
            for _ in range(3):
                memory.force_failure_point()
        # One never-persisted store: its first post-failure read is a
        # cross-failure race finding at every later failure point.
        memory.store(base + 4096, b"\xEE" * 8)

    def post_failure(self, ctx):
        memory = ctx.memory
        base = memory.pool_named("p").base
        for step in range(self.test_size):
            memory.load(base + 64 * step, 8)
        memory.load(base + 4096, 8)


class QuarantineWorkload(Workload):
    """Recovery trips over a (simulated) harness fault every time: the
    supervisor must quarantine every point, not abort the run."""

    name = "quarantine_bait"

    def setup(self, ctx):
        ctx.memory.map_pool(PMPool("p", 1 << 20))

    def pre_failure(self, ctx):
        memory = ctx.memory
        base = memory.pool_named("p").base
        for step in range(self.test_size):
            address = base + 64 * step
            memory.store(address, step.to_bytes(8, "little"))
            memory.flush(address, 8)
            memory.fence()

    def post_failure(self, ctx):
        raise HarnessError(
            "synthetic harness fault in recovery", phase="post_exec"
        )


class TestWarmDeterminism:
    def test_warm_pool_matches_serial(self):
        reference, _ = _run(jobs=1)
        warm, detector = _run(
            jobs=2, executor="process", batch_size=4
        )
        assert _report_dict(warm) == _report_dict(reference)
        assert live_segments() == []
        metrics = detector.telemetry.metrics
        assert metrics.value("exec.shm_bytes_shared") > 0
        assert metrics.get("exec.warm_fallbacks") is None

    def test_batch_sizes_are_invisible(self):
        reference, _ = _run(
            workload=BurstWorkload(test_size=4), jobs=1
        )
        assert reference.stats.post_runs_deduped > 0
        for batch_size in (1, 3, 16):
            report, _ = _run(
                workload=BurstWorkload(test_size=4),
                jobs=2, executor="process", batch_size=batch_size,
            )
            assert _report_dict(report) == _report_dict(reference), \
                f"batch_size={batch_size} changed the report"
        assert live_segments() == []

    def test_cold_pool_still_matches(self):
        reference, _ = _run(jobs=1)
        cold, _ = _run(
            jobs=2, executor="process", warm_pool=False, batch_size=4
        )
        assert _report_dict(cold) == _report_dict(reference)

    def test_workers_amortize(self):
        _report, detector = _run(
            workload=BurstWorkload(test_size=4),
            jobs=2, executor="process", batch_size=4,
        )
        metrics = detector.telemetry.metrics
        # Post phase + replay phase over two workers: reuse must beat
        # the spawn count or the warm pool is warm in name only.
        assert metrics.value("exec.worker_reuse_count") >= 2
        assert metrics.value("exec.batch_size_effective") > 1.0


class TestResumeMidBatch:
    def test_truncated_journal_resumes_into_batches(self, tmp_path):
        full_path = tmp_path / "full.ndjson"
        reference, _ = _run(
            workload=BurstWorkload(test_size=4), jobs=1,
            journal=str(full_path),
        )
        lines = full_path.read_text().splitlines(keepends=True)
        assert len(lines) > 6
        # Cut mid-run: the resumed phase starts at an arbitrary point
        # inside what would have been a full batch.
        killed_path = tmp_path / "killed.ndjson"
        killed_path.write_text("".join(lines[:len(lines) // 2]))
        serial_resumed, _ = _run(
            workload=BurstWorkload(test_size=4), jobs=1,
            resume=str(killed_path),
            journal=str(tmp_path / "serial.ndjson"),
        )
        warm_resumed, _ = _run(
            workload=BurstWorkload(test_size=4),
            jobs=2, executor="process", batch_size=4,
            resume=str(killed_path),
            journal=str(tmp_path / "warm.ndjson"),
        )
        # Warm batches must be invisible to the resume splice...
        assert _report_dict(warm_resumed) == _report_dict(serial_resumed)
        # ...and the findings identical to the uninterrupted run (only
        # the dedup work counters may differ: journaled points are
        # spliced, not re-deduplicated).
        assert _bugs_by_point(warm_resumed) == _bugs_by_point(reference)
        assert live_segments() == []


class TestLeakGuard:
    def test_segments_unlinked_on_quarantine(self):
        report, _ = _run(
            workload=QuarantineWorkload(test_size=3),
            jobs=2, executor="process", batch_size=2,
        )
        assert report.degraded
        assert report.incidents
        assert all(
            incident.kind is IncidentKind.HARNESS_ERROR
            for incident in report.incidents
        )
        assert live_segments() == []

    def test_segments_unlinked_on_chaos_worker_death(self):
        baseline, _ = _run(jobs=1)
        report, _ = _run(
            jobs=2, executor="process", batch_size=2,
            chaos="crash:0.3", max_retries=8,
        )
        assert report.incidents, "crash:0.3 should fire at least once"
        assert all(
            incident.kind is IncidentKind.WORKER_DEATH
            for incident in report.incidents
        )
        assert not report.degraded
        assert _bugs_by_point(report) == _bugs_by_point(baseline)
        assert live_segments() == []
