"""Tests for address ranges and cache-line arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pm.address import AddressRange, align_down, align_up, line_of
from repro.pm.constants import CACHE_LINE_SIZE


class TestAlignment:
    def test_align_down(self):
        assert align_down(0) == 0
        assert align_down(63) == 0
        assert align_down(64) == 64
        assert align_down(130) == 128

    def test_align_up(self):
        assert align_up(0) == 0
        assert align_up(1) == 64
        assert align_up(64) == 64
        assert align_up(65) == 128

    def test_custom_alignment(self):
        assert align_down(130, 8) == 128
        assert align_up(130, 8) == 136

    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(100) == 64


class TestAddressRange:
    def test_end_and_contains(self):
        rng = AddressRange(100, 10)
        assert rng.end == 110
        assert 100 in rng
        assert 109 in rng
        assert 110 not in rng
        assert 99 not in rng

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            AddressRange(0, -1)

    def test_contains_range(self):
        outer = AddressRange(0, 100)
        assert outer.contains_range(AddressRange(10, 20))
        assert outer.contains_range(AddressRange(0, 100))
        assert not outer.contains_range(AddressRange(90, 20))

    def test_overlaps(self):
        a = AddressRange(0, 10)
        assert a.overlaps(AddressRange(5, 10))
        assert a.overlaps(AddressRange(0, 1))
        assert not a.overlaps(AddressRange(10, 5))  # touching only

    def test_intersection(self):
        a = AddressRange(0, 10)
        assert a.intersection(AddressRange(5, 10)) == AddressRange(5, 5)
        assert a.intersection(AddressRange(20, 5)) is None

    def test_lines_single(self):
        rng = AddressRange(10, 20)
        assert list(rng.lines()) == [0]

    def test_lines_spanning(self):
        rng = AddressRange(60, 10)  # crosses the 64-byte boundary
        assert list(rng.lines()) == [0, 64]

    def test_lines_empty_range(self):
        assert list(AddressRange(100, 0).lines()) == []

    def test_split_by_lines(self):
        rng = AddressRange(60, 10)
        pieces = list(rng.split_by_lines())
        assert pieces == [AddressRange(60, 4), AddressRange(64, 6)]

    def test_str(self):
        assert str(AddressRange(0x100, 16)) == "[0x100, 0x110)"


@given(st.integers(0, 1 << 40), st.integers(1, 4096))
def test_split_by_lines_partitions_range(start, size):
    rng = AddressRange(start, size)
    pieces = list(rng.split_by_lines())
    # Pieces are contiguous, cover exactly the range, and never cross
    # a line boundary.
    assert pieces[0].start == start
    assert pieces[-1].end == rng.end
    for i, piece in enumerate(pieces):
        assert piece.size > 0
        assert line_of(piece.start) == line_of(piece.end - 1)
        if i:
            assert piece.start == pieces[i - 1].end
    assert sum(piece.size for piece in pieces) == size
    assert len(pieces) == len(list(rng.lines()))


@given(st.integers(0, 1 << 40))
def test_line_of_is_idempotent_and_aligned(address):
    line = line_of(address)
    assert line % CACHE_LINE_SIZE == 0
    assert line <= address < line + CACHE_LINE_SIZE
    assert line_of(line) == line
