"""Tests for the persistent allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfPMError
from repro.pmdk.pmemobj.alloc import ALLOC_ALIGN, Allocator, BlockHeader
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder


def make_allocator(heap_size=64 * 1024):
    memory = PersistentMemory(TraceRecorder(), capture_ips=False)
    pool = memory.map_pool(PMPool("heap", size=heap_size + 4096))
    allocator = Allocator(memory, pool.base, heap_size)
    allocator.format()
    return memory, allocator


class TestAllocation:
    def test_alloc_returns_aligned_nonoverlapping_blocks(self):
        _memory, allocator = make_allocator()
        a = allocator.alloc(10)
        b = allocator.alloc(100)
        assert a % ALLOC_ALIGN == 0
        assert b % ALLOC_ALIGN == 0
        assert b >= a + 64  # no overlap

    def test_zeroed_alloc_contents(self):
        memory, allocator = make_allocator()
        address = allocator.alloc(32, zero=True)
        assert memory.load(address, 32) == bytes(32)

    def test_alloc_emits_marker(self):
        memory, allocator = make_allocator()
        allocator.alloc(16, zero=False)
        allocs = [
            e for e in memory.recorder.events
            if e.kind is EventKind.ALLOC
        ]
        assert len(allocs) == 1
        assert allocs[0].info == "raw"
        assert allocs[0].size == 16

    def test_invalid_size_rejected(self):
        _memory, allocator = make_allocator()
        with pytest.raises(ValueError):
            allocator.alloc(0)

    def test_exhaustion(self):
        _memory, allocator = make_allocator(heap_size=1024)
        with pytest.raises(OutOfPMError):
            for _ in range(100):
                allocator.alloc(64)

    def test_free_and_reuse(self):
        _memory, allocator = make_allocator()
        a = allocator.alloc(64)
        allocator.free(a)
        assert allocator.free_list() == [a - BlockHeader.SIZE]
        b = allocator.alloc(64)
        assert b == a  # first fit reuses the freed block
        assert allocator.free_list() == []

    def test_free_emits_marker_with_block_size(self):
        memory, allocator = make_allocator()
        a = allocator.alloc(100)
        allocator.free(a)
        frees = [
            e for e in memory.recorder.events
            if e.kind is EventKind.FREE
        ]
        assert len(frees) == 1
        assert frees[0].addr == a
        assert frees[0].size == 128  # rounded-up block size

    def test_first_fit_skips_too_small_blocks(self):
        _memory, allocator = make_allocator()
        small = allocator.alloc(64)
        big = allocator.alloc(256)
        allocator.free(small)
        allocator.free(big)
        got = allocator.alloc(200)
        assert got == big  # small block skipped, later entry used

    def test_bytes_used_grows_monotonically_with_bump(self):
        _memory, allocator = make_allocator()
        used0 = allocator.bytes_used()
        allocator.alloc(64)
        assert allocator.bytes_used() > used0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 300)),
            st.tuples(st.just("free"), st.integers(0, 10)),
        ),
        max_size=40,
    )
)
def test_allocator_never_hands_out_overlapping_live_blocks(ops):
    _memory, allocator = make_allocator(heap_size=256 * 1024)
    live = []  # (address, rounded size)
    for op, arg in ops:
        if op == "alloc":
            address = allocator.alloc(arg)
            size = -(-arg // ALLOC_ALIGN) * ALLOC_ALIGN
            for other_addr, other_size in live:
                assert (
                    address + size <= other_addr
                    or other_addr + other_size <= address
                ), "allocator returned overlapping live blocks"
            live.append((address, size))
        elif live:
            address, _size = live.pop(arg % len(live))
            allocator.free(address)
