"""Unit tests for the static analyzer: one minimal synthetic workload
per rule, asserting the rule id and that the finding points into this
file, plus the lexical hygiene checks and the offline trace checker.
"""

import pytest

from repro.analysis import (
    analyze_trace,
    analyze_workload,
    build_prune_plan,
    check_module,
    lint_workload,
)
from repro.pmdk import ObjectPool, Struct, U64, pmem
from repro.workloads.base import Workload

LAYOUT = "xf-analysis-rules-test"


class MiniRoot(Struct):
    value = U64()
    extra = U64()


class _Mini(Workload):
    """Boilerplate: a root with two fields; subclasses override
    ``pre_failure``."""

    name = "mini"

    def _open(self, memory):
        return ObjectPool.open(memory, "mini", LAYOUT, MiniRoot)

    def setup(self, ctx):
        pool = ObjectPool.create(
            ctx.memory, "mini", LAYOUT, root_cls=MiniRoot
        )
        root = pool.root
        root.value = 0
        root.extra = 0
        pmem.persist(ctx.memory, root.address, MiniRoot.SIZE)

    def post_failure(self, ctx):
        self._open(ctx.memory)


def rules_of(workload):
    report = analyze_workload(workload)
    assert not report.stats.incomplete
    for finding in report.findings:
        assert finding.file.endswith("test_analysis_rules.py")
    return {finding.rule for finding in report.findings}


class CleanStorePersist(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        root.value = 7
        pmem.persist(ctx.memory, root.field_addr("value"), 8)


class UnflushedStore(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        pool.root.value = 7  # never flushed: XF-P001


class FlushNoFence(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        root.value = 7
        pmem.flush(ctx.memory, root.field_addr("value"), 8)
        # no drain/sfence on the exit path: XF-P002


class StoreCrossesBarrier(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        root.value = 7  # stays dirty across the sfence: XF-P003
        root.extra = 1
        pmem.flush(ctx.memory, root.field_addr("extra"), 8)
        pmem.sfence(ctx.memory)
        pmem.persist(ctx.memory, root.field_addr("value"), 8)


class NTStoreNoDrain(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        pmem.memcpy_nodrain(
            ctx.memory, root.field_addr("value"), b"\x07" * 8
        )  # never drained: XF-P004


class TxStoreNoAdd(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        with pool.transaction() as tx:
            tx.add_field(root, "extra")
            root.extra = 1
            root.value = 7  # not undo-logged: XF-T001


class DuplicateTxAdd(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        with pool.transaction() as tx:
            tx.add_field(root, "value")
            tx.add_field(root, "value")  # already covered: XF-T002
            root.value = 7


class DoubleFlush(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        root.value = 7
        pmem.persist(ctx.memory, root.field_addr("value"), 8)
        pmem.persist(  # range already persisted: XF-F001
            ctx.memory, root.field_addr("value"), 8
        )


class FenceNoPending(_Mini):
    def pre_failure(self, ctx):
        pool = self._open(ctx.memory)
        root = pool.root
        root.value = 7
        pmem.persist(ctx.memory, root.field_addr("value"), 8)
        pmem.sfence(ctx.memory)  # nothing written back: XF-F002


class TestInterpreterRules:
    def test_clean_workload_has_no_findings(self):
        assert rules_of(CleanStorePersist()) == set()

    def test_unflushed_store_at_exit(self):
        assert rules_of(UnflushedStore()) == {"XF-P001"}

    def test_flush_without_fence_at_exit(self):
        assert rules_of(FlushNoFence()) == {"XF-P002"}

    def test_store_crossing_a_barrier_dirty(self):
        assert rules_of(StoreCrossesBarrier()) == {"XF-P003"}

    def test_nt_store_without_drain(self):
        assert rules_of(NTStoreNoDrain()) == {"XF-P004"}

    def test_in_tx_store_without_tx_add(self):
        assert rules_of(TxStoreNoAdd()) == {"XF-T001"}

    def test_duplicate_tx_add(self):
        assert rules_of(DuplicateTxAdd()) == {"XF-T002"}

    def test_double_flush(self):
        assert rules_of(DoubleFlush()) == {"XF-F001"}

    def test_fence_with_no_pending_writeback(self):
        assert rules_of(FenceNoPending()) == {"XF-F002"}

    def test_findings_carry_provenance(self):
        report = analyze_workload(UnflushedStore())
        (finding,) = report.findings
        assert finding.severity == "race"
        assert finding.line > 0
        assert "pre_failure" in finding.function
        assert finding.location.endswith(f":{finding.line}")


class TestPrunePlan:
    def test_clean_workload_builds_a_plan(self):
        plan = build_prune_plan(CleanStorePersist())
        assert plan is not None
        assert len(plan) > 0

    def test_flagged_workload_builds_no_plan(self):
        # Any finding disables pruning: flagged code may leave data
        # unpersisted arbitrarily early, so no window is safe.
        assert build_prune_plan(UnflushedStore()) is None

    def test_plan_certifies_only_known_lines(self):
        from repro._location import SourceLocation

        plan = build_prune_plan(CleanStorePersist())
        assert not plan.certifies(
            SourceLocation("nowhere.py", 1, "f")
        )


HYGIENE_UNBALANCED = '''
def pre(ctx):
    ctx.interface.roi_begin()
    work()
'''

HYGIENE_SKIPPED_COMMIT = '''
def setup(iface, root):
    iface.add_commit_var(root.field_addr("valid"), 1)

def pre(iface, root):
    iface.skip_detection_begin()
    root.valid = 1
    iface.skip_detection_end()
'''

HYGIENE_CLEAN = '''
def pre(ctx):
    ctx.interface.roi_begin()
    work()
    ctx.interface.roi_end()
'''


class TestHygiene:
    def test_unbalanced_roi(self):
        findings = check_module("<mem>", source=HYGIENE_UNBALANCED)
        assert {f.rule for f in findings} == {"XF-A001"}

    def test_commit_write_inside_skip_region(self):
        findings = check_module("<mem>", source=HYGIENE_SKIPPED_COMMIT)
        assert {f.rule for f in findings} == {"XF-A002"}

    def test_balanced_module_is_clean(self):
        assert check_module("<mem>", source=HYGIENE_CLEAN) == []


TRACE_CLEAN = """\
0 STORE 0x1000 8 0 - | wl.py:10:op
1 FLUSH 0x1000 8 0 CLWB | wl.py:11:op
2 FENCE 0x0 0 0 SFENCE | wl.py:12:op
"""

TRACE_DOUBLE_FLUSH = """\
0 STORE 0x1000 8 0 - | wl.py:10:op
1 FLUSH 0x1000 8 0 CLWB | wl.py:11:op
2 FENCE 0x0 0 0 SFENCE | wl.py:12:op
3 FLUSH 0x1000 8 0 CLWB | wl.py:13:op
4 FENCE 0x0 0 0 SFENCE | wl.py:14:op
"""

TRACE_UNFLUSHED = """\
0 STORE 0x1000 8 0 - | wl.py:10:op
"""


class TestTraceChecker:
    def test_clean_trace(self):
        assert analyze_trace(TRACE_CLEAN).findings == []

    def test_double_flush_trace(self):
        rules = {
            f.rule for f in analyze_trace(TRACE_DOUBLE_FLUSH).findings
        }
        assert "XF-F001" in rules

    def test_unflushed_store_trace(self):
        report = analyze_trace(TRACE_UNFLUSHED)
        assert {f.rule for f in report.findings} == {"XF-P001"}
        (finding,) = report.findings
        assert (finding.file, finding.line) == ("wl.py", 10)


class TestLintWorkload:
    def test_lint_merges_interpreter_and_hygiene(self):
        report = lint_workload(UnflushedStore())
        assert "XF-P001" in {f.rule for f in report.findings}
        assert report.stats.lines_covered > 0
