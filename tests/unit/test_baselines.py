"""Unit tests for the baseline checkers."""

import pytest

from repro.baselines import (
    BaselineFinding,
    CheckerUnavailable,
    PmemcheckBaseline,
    PMTestBaseline,
    YatBaseline,
)
from repro.workloads import (
    ArrayBackupWorkload,
    HashmapAtomicWorkload,
    HashmapTxWorkload,
    LinkedListWorkload,
    PMCacheWorkload,
)


class TestPmemcheck:
    def test_clean_workload_has_no_findings(self):
        report = PmemcheckBaseline().run(
            ArrayBackupWorkload(test_size=2)
        )
        assert not report.has_findings
        assert report.tool == "pmemcheck"

    def test_unpersisted_store_reported(self):
        # count bumped outside the transaction: nothing ever flushes
        # it, so the store is still volatile at exit.
        report = PmemcheckBaseline().run(
            HashmapTxWorkload(
                faults={"count_outside_tx"}, init_size=1, test_size=1,
            )
        )
        kinds = {finding.kind for finding in report.findings}
        assert "store-not-persisted" in kinds

    def test_flushed_but_unfenced_reported(self):
        """A flush with no later fence anywhere in the run: pmemcheck
        reports the pending writeback at exit.  (A fault like
        skip_fence_count is *not* reported because a later operation's
        fence completes the writeback — the store genuinely persists,
        just later than intended; only XFDetector's failure injection
        exposes the window.)"""
        from repro.pmdk import I64, ObjectPool, Struct, pmem
        from repro.workloads.base import Workload

        class Tail(Struct):
            value = I64()

        class FlushNoFence(Workload):
            name = "flush-no-fence"

            def setup(self, ctx):
                ObjectPool.create(ctx.memory, "t", "t", root_cls=Tail)

            def pre_failure(self, ctx):
                pool = ObjectPool.open(ctx.memory, "t", "t", Tail)
                pool.root.value = 42
                pmem.flush(ctx.memory, pool.root.address, 8)
                # ... and the program ends without any fence.

            def post_failure(self, ctx):
                pass

        report = PmemcheckBaseline().run(FlushNoFence())
        details = {finding.detail for finding in report.findings}
        assert any("never fenced" in detail for detail in details)

    def test_superfluous_flush_reported(self):
        report = PmemcheckBaseline().run(
            HashmapAtomicWorkload(
                faults={"redundant_flush_count"},
                init_size=1, test_size=1,
            )
        )
        kinds = {finding.kind for finding in report.findings}
        assert "superfluous-flush" in kinds

    def test_summary_counts_unique_findings(self):
        report = PmemcheckBaseline().run(
            HashmapAtomicWorkload(
                faults={"skip_persist_count"}, init_size=1, test_size=2,
            )
        )
        assert str(len(report.unique_findings())) in report.summary()


class TestPMTest:
    def test_clean_tx_workload_has_no_findings(self):
        report = PMTestBaseline().run(
            HashmapTxWorkload(init_size=1, test_size=2)
        )
        assert not report.has_findings

    def test_write_without_add_reported(self):
        report = PMTestBaseline().run(
            LinkedListWorkload(
                recovery="naive", init_size=1, test_size=1,
                faults={"unlogged_length"},
            )
        )
        kinds = {finding.kind for finding in report.findings}
        assert kinds == {"write-without-add"}

    def test_duplicate_add_reported(self):
        report = PMTestBaseline().run(
            HashmapTxWorkload(
                faults={"dup_add_count"}, init_size=1, test_size=1,
            )
        )
        kinds = {finding.kind for finding in report.findings}
        assert "duplicate-tx-add" in kinds

    def test_library_writes_not_flagged(self):
        # Undo-log internals write inside the transaction without
        # TX_ADD; a baseline that flagged them would drown in noise.
        report = PMTestBaseline().run(
            HashmapTxWorkload(init_size=0, test_size=1)
        )
        assert not report.has_findings


class TestYat:
    def test_clean_workload_all_states_consistent(self):
        report = YatBaseline().run(
            LinkedListWorkload(recovery="alt", init_size=1, test_size=2)
        )
        assert report.checked_states > 0
        assert report.inconsistent_states == 0

    def test_torn_count_caught_by_checker(self):
        # hashmap_tx with an unlogged count: the commit persists the
        # new entry but not the count, so strict crash states leave the
        # stored count out of sync with the traversal.
        report = YatBaseline().run(
            HashmapTxWorkload(
                faults={"skip_add_count"}, init_size=1, test_size=2,
            )
        )
        assert report.inconsistent_states > 0
        assert report.has_findings

    def test_yat_blind_spot_line_sharing(self):
        """Yat misses Figure 1's bug here: `length` shares a cache line
        with the logged `head`, so every strict crash state happens to
        hold a consistent pair — the checker passes everywhere, while
        XFDetector still reports the cross-failure race (the program
        gives no *guarantee*, it just gets lucky on this layout)."""
        workload_args = dict(
            recovery="naive", init_size=1, test_size=2,
            faults={"unlogged_length"},
        )
        yat = YatBaseline().run(LinkedListWorkload(**workload_args))
        assert yat.inconsistent_states == 0

        from repro.core import XFDetector

        report = XFDetector().run(LinkedListWorkload(**workload_args))
        assert report.races

    def test_btree_checker_validates_invariants(self):
        report = YatBaseline().run(
            __import__(
                "repro.workloads", fromlist=["BTreeWorkload"]
            ).BTreeWorkload(init_size=1, test_size=3)
        )
        assert report.inconsistent_states == 0

    def test_generic_program_unsupported(self):
        """Yat's limitation (paper Section 8): no checker, no testing."""
        with pytest.raises(CheckerUnavailable):
            YatBaseline().run(PMCacheWorkload(test_size=1))

    def test_custom_checker_accepted(self):
        calls = []
        report = YatBaseline(
            checker=lambda memory: calls.append(memory)
        ).run(LinkedListWorkload(recovery="alt", test_size=1))
        assert len(calls) == report.checked_states > 0


class TestFindingType:
    def test_dedup_key(self):
        a = BaselineFinding("k", "d", 0x10, 8)
        b = BaselineFinding("k", "d", 0x20, 8)
        assert a.dedup_key() == b.dedup_key()  # address not in key
