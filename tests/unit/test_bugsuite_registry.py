"""Unit tests for the bug-suite registry and new-bug scenario types."""

import pytest

from repro.bugsuite import (
    NEW_BUGS,
    SUITE_ADDITIONAL,
    SUITE_PMTEST,
    SyntheticBug,
    bug_entries,
    build_workload,
    expected_counts,
)
from repro.core import BugKind
from repro.workloads import MICROBENCHMARKS


class TestRegistryShape:
    def test_total_bug_count(self):
        assert len(bug_entries()) == 59

    def test_filters(self):
        btree = bug_entries(workload="btree")
        assert len(btree) == 14
        assert all(bug.workload == "btree" for bug in btree)
        races = bug_entries(bug_class="R")
        assert all(bug.bug_class == "R" for bug in races)
        pmtest = bug_entries(suite=SUITE_PMTEST)
        additional = bug_entries(suite=SUITE_ADDITIONAL)
        assert len(pmtest) + len(additional) == 59

    def test_semantic_bugs_only_for_hashmap_atomic(self):
        semantic = bug_entries(bug_class="S")
        assert len(semantic) == 4
        assert {bug.workload for bug in semantic} == {"hashmap_atomic"}
        assert {bug.suite for bug in semantic} == {SUITE_ADDITIONAL}

    def test_every_flag_exists_on_its_workload(self):
        for bug in bug_entries():
            cls = MICROBENCHMARKS[bug.workload]
            assert bug.flag in cls.FAULTS, bug
            declared_class, _description = cls.FAULTS[bug.flag]
            assert declared_class == bug.bug_class, bug

    def test_no_duplicate_entries(self):
        keys = [(bug.workload, bug.flag) for bug in bug_entries()]
        assert len(keys) == len(set(keys))

    def test_expected_counts_sum(self):
        counts = expected_counts()
        total = sum(
            count for row in counts.values() for count in row.values()
        )
        assert total == 59


class TestSyntheticBugType:
    def test_expected_kind_mapping(self):
        assert SyntheticBug(
            "btree", "f", "R", SUITE_PMTEST
        ).expected_kind is BugKind.CROSS_FAILURE_RACE
        assert SyntheticBug(
            "btree", "f", "S", SUITE_PMTEST
        ).expected_kind is BugKind.CROSS_FAILURE_SEMANTIC
        assert SyntheticBug(
            "btree", "f", "P", SUITE_PMTEST
        ).expected_kind is BugKind.PERFORMANCE

    def test_str(self):
        bug = bug_entries(workload="ctree")[0]
        assert "ctree:" in str(bug)

    def test_build_workload_applies_params(self):
        bug = next(
            entry for entry in bug_entries(workload="hashmap_tx")
            if entry.flag == "skip_add_prev_next"
        )
        workload = build_workload(bug)
        assert workload.nbuckets == 2  # the chaining override
        assert workload.faults == {"skip_add_prev_next"}


class TestNewBugScenarios:
    def test_four_scenarios_numbered(self):
        assert [scenario.number for scenario in NEW_BUGS] == [1, 2, 3, 4]

    def test_scenarios_name_paper_locations(self):
        locations = " ".join(
            scenario.location for scenario in NEW_BUGS
        )
        assert "hashmap_atomic.c" in locations
        assert "server.c" in locations
        assert "obj.c" in locations

    def test_bug4_uses_strict_images(self):
        from repro.pm.image import CrashImageMode

        bug4 = NEW_BUGS[3]
        assert (
            bug4.config.crash_image_mode
            is CrashImageMode.PERSISTED_ONLY
        )
        assert BugKind.POST_FAILURE_CRASH in bug4.expected_kinds
