"""Tests for the Figure 9 cache-line persistence state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pm.cacheline import CacheModel, FenceKind, FlushKind, LineState
from repro.pm.constants import CACHE_LINE_SIZE


def make_model(backing=None):
    backing = backing if backing is not None else {}

    def read_line(base):
        return backing.get(base, bytes(CACHE_LINE_SIZE))

    return CacheModel(read_line), backing


class TestFigure9Transitions:
    def test_initial_state_unmodified(self):
        model, _ = make_model()
        assert model.state_of(0) is LineState.UNMODIFIED

    def test_store_makes_modified(self):
        model, _ = make_model()
        model.store(10, 4)
        assert model.state_of(10) is LineState.MODIFIED
        assert model.state_of(0) is LineState.MODIFIED  # same line

    def test_store_spanning_lines_marks_both(self):
        model, _ = make_model()
        model.store(60, 10)
        assert model.state_of(0) is LineState.MODIFIED
        assert model.state_of(64) is LineState.MODIFIED
        assert model.state_of(128) is LineState.UNMODIFIED

    def test_clwb_moves_to_writeback_pending(self):
        model, _ = make_model()
        model.store(0, 8)
        assert model.flush(0, FlushKind.CLWB) is True
        assert model.state_of(0) is LineState.WRITEBACK_PENDING
        assert model.has_pending_writebacks()

    def test_fence_completes_writeback(self):
        model, backing = make_model()
        backing[0] = b"x" * CACHE_LINE_SIZE
        model.store(0, 8)
        model.flush(0)
        completed = model.fence()
        assert completed == [0]
        assert model.state_of(0) is LineState.PERSISTED
        assert model.persisted_line(0) == b"x" * CACHE_LINE_SIZE
        assert not model.has_pending_writebacks()

    def test_fence_without_pending_is_not_ordering_point(self):
        model, _ = make_model()
        assert model.fence() == []
        model.store(0, 8)
        assert model.fence() == []  # modified but not flushed

    def test_flush_unmodified_line_is_redundant(self):
        model, _ = make_model()
        assert model.flush(0) is False

    def test_flush_pending_line_is_redundant(self):
        model, _ = make_model()
        model.store(0, 8)
        model.flush(0)
        assert model.flush(0) is False  # Figure 9 yellow edge

    def test_flush_persisted_line_is_redundant(self):
        model, _ = make_model()
        model.store(0, 8)
        model.flush(0)
        model.fence()
        assert model.flush(0) is False

    def test_store_after_persist_remodifies(self):
        model, _ = make_model()
        model.store(0, 8)
        model.flush(0)
        model.fence()
        model.store(0, 8)
        assert model.state_of(0) is LineState.MODIFIED

    def test_clflush_is_synchronous(self):
        model, backing = make_model()
        backing[0] = b"y" * CACHE_LINE_SIZE
        model.store(0, 8)
        assert model.flush(0, FlushKind.CLFLUSH) is True
        assert model.state_of(0) is LineState.PERSISTED
        assert model.persisted_line(0) == b"y" * CACHE_LINE_SIZE

    def test_clflushopt_behaves_like_clwb(self):
        model, _ = make_model()
        model.store(0, 8)
        model.flush(0, FlushKind.CLFLUSHOPT)
        assert model.state_of(0) is LineState.WRITEBACK_PENDING

    def test_nt_store_is_immediately_pending(self):
        model, _ = make_model()
        model.nt_store(0, 8)
        assert model.state_of(0) is LineState.WRITEBACK_PENDING
        assert model.fence(FenceKind.DRAIN) == [0]
        assert model.state_of(0) is LineState.PERSISTED


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        model, _ = make_model()
        model.store(0, 8)
        model.flush(0)
        snap = model.snapshot()
        model.fence()
        assert model.state_of(0) is LineState.PERSISTED
        model.restore(snap)
        assert model.state_of(0) is LineState.WRITEBACK_PENDING
        assert model.has_pending_writebacks()

    def test_persisted_only_overlay_reverts_modified(self):
        model, backing = make_model()
        # Persist an initial value, then modify without flushing.
        backing[0] = b"A" * CACHE_LINE_SIZE
        model.store(0, 64)
        model.flush(0)
        model.fence()
        backing[0] = b"B" * CACHE_LINE_SIZE
        model.store(0, 64)
        overlay = model.persisted_only_overlay(
            0, CACHE_LINE_SIZE, backing[0]
        )
        assert overlay == b"A" * CACHE_LINE_SIZE

    def test_persisted_only_overlay_zero_fills_never_persisted(self):
        model, backing = make_model()
        backing[0] = b"C" * CACHE_LINE_SIZE
        model.store(0, 64)  # modified, never persisted
        overlay = model.persisted_only_overlay(
            0, CACHE_LINE_SIZE, backing[0]
        )
        assert overlay == bytes(CACHE_LINE_SIZE)

    def test_persisted_only_overlay_keeps_untouched_lines(self):
        model, _ = make_model()
        current = b"D" * CACHE_LINE_SIZE
        overlay = model.persisted_only_overlay(
            0, CACHE_LINE_SIZE, current
        )
        assert overlay == current


# ----------------------------------------------------------------------
# Property: for any operation sequence, line states follow Figure 9 and
# a fence is an ordering point iff some line was pending.
# ----------------------------------------------------------------------

_events = st.lists(
    st.tuples(
        st.sampled_from(["store", "nt", "clwb", "clflush", "fence"]),
        st.integers(0, 3),  # line index
    ),
    max_size=60,
)


@settings(max_examples=150, deadline=None)
@given(_events)
def test_fsm_matches_reference_model(events):
    model, _ = make_model()
    reference = {}

    for op, line_idx in events:
        address = line_idx * CACHE_LINE_SIZE
        state = reference.get(line_idx, "U")
        if op == "store":
            model.store(address, 8)
            reference[line_idx] = "M"
        elif op == "nt":
            model.nt_store(address, 8)
            reference[line_idx] = "W"
        elif op == "clwb":
            useful = model.flush(address, FlushKind.CLWB)
            assert useful == (state == "M")
            if state == "M":
                reference[line_idx] = "W"
        elif op == "clflush":
            model.flush(address, FlushKind.CLFLUSH)
            if state in ("M", "W"):
                reference[line_idx] = "P"
        else:
            had_pending = any(v == "W" for v in reference.values())
            completed = model.fence()
            assert bool(completed) == had_pending
            for k, v in reference.items():
                if v == "W":
                    reference[k] = "P"
        for k, v in reference.items():
            assert model.state_of(k * CACHE_LINE_SIZE).value == v
