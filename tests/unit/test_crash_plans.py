"""Unit tests for invariant-driven crash plans (repro.analysis.plans).

Plans are built against hand-made mechanism epochs and failure points
so every conservatism rule is pinned in isolation: keep-sets bracket
the commit, poisoned epochs keep everything, out-of-epoch points are
never skipped, overlapping epochs must agree, and hybrid mode only
collapses library-witnessed transaction epochs.
"""

import pytest

from repro.analysis.mech import (
    CHECKSUMMED,
    MechEpoch,
    MechReport,
    UNDO_JOURNALED,
)
from repro.analysis.plans import (
    PLAN_MODES,
    build_crash_plans,
)
from repro.core import DetectorConfig
from repro.core.injector import FailureInjector, FailurePoint


def _fps(seqs):
    """Failure points whose markers sit at the given trace seqs."""
    return [
        FailurePoint(fid, "ordering", seq + 1, store=None)
        for fid, seq in enumerate(seqs)
    ]


def _report(epochs):
    return MechReport(target="test", epochs=list(epochs))


class TestKeepSets:
    def test_keep_brackets_the_commit(self):
        epoch = MechEpoch(
            kind=UNDO_JOURNALED, source="undo", start=0, end=100,
            commit=50,
        )
        fps = _fps([10, 20, 30, 60, 70, 90])
        plan_set = build_crash_plans(_report([epoch]), fps)
        (plan,) = plan_set.plans
        # first, last before commit, first after commit, last.
        assert set(plan.keep) == {0, 2, 3, 5}
        assert plan_set.skipped_fids == {1, 4}
        assert plan.skipped == 2

    def test_single_point_epoch_keeps_it(self):
        epoch = MechEpoch(
            kind=UNDO_JOURNALED, source="undo", start=0, end=100,
            commit=50,
        )
        fps = _fps([10])
        plan_set = build_crash_plans(_report([epoch]), fps)
        assert plan_set.skipped_fids == frozenset()
        assert plan_set.executes(0)

    def test_violated_epoch_keeps_every_point(self):
        epoch = MechEpoch(
            kind=UNDO_JOURNALED, source="undo", start=0, end=100,
            commit=50, violated=True,
        )
        fps = _fps([10, 20, 30, 60, 70, 90])
        plan_set = build_crash_plans(_report([epoch]), fps)
        (plan,) = plan_set.plans
        assert plan.poisoned
        assert plan.keep == plan.fids
        assert plan_set.skipped_fids == frozenset()

    def test_non_collapsible_kind_keeps_every_point(self):
        epoch = MechEpoch(
            kind=CHECKSUMMED, source="ck", start=0, end=100, commit=50,
        )
        fps = _fps([10, 20, 30, 60, 70, 90])
        plan_set = build_crash_plans(_report([epoch]), fps)
        (plan,) = plan_set.plans
        assert plan.poisoned
        assert plan_set.skipped_fids == frozenset()

    def test_out_of_epoch_points_always_execute(self):
        epoch = MechEpoch(
            kind=UNDO_JOURNALED, source="undo", start=100, end=200,
            commit=150,
        )
        fps = _fps([10, 20, 300])
        plan_set = build_crash_plans(_report([epoch]), fps)
        assert plan_set.skipped_fids == frozenset()
        assert plan_set.executed_fids == {0, 1, 2}


class TestOverlappingEpochs:
    def test_skip_requires_unanimity(self):
        collapsible = MechEpoch(
            kind=UNDO_JOURNALED, source="undo", start=0, end=100,
            commit=50,
        )
        poisoned = MechEpoch(
            kind=UNDO_JOURNALED, source="tx:1", start=0, end=100,
            commit=50, violated=True,
        )
        fps = _fps([10, 20, 30, 60, 70, 90])
        alone = build_crash_plans(_report([collapsible]), fps)
        assert alone.skipped_fids == {1, 4}
        both = build_crash_plans(
            _report([collapsible, poisoned]), fps
        )
        assert both.skipped_fids == frozenset()

    def test_two_agreeing_epochs_still_skip(self):
        a = MechEpoch(
            kind=UNDO_JOURNALED, source="a", start=0, end=100,
            commit=50,
        )
        b = MechEpoch(
            kind=UNDO_JOURNALED, source="b", start=0, end=100,
            commit=50,
        )
        fps = _fps([10, 20, 30, 60, 70, 90])
        plan_set = build_crash_plans(_report([a, b]), fps)
        assert plan_set.skipped_fids == {1, 4}


class TestModes:
    def test_exhaustive_returns_none(self):
        assert build_crash_plans(
            _report([]), _fps([1]), mode="exhaustive"
        ) is None

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            build_crash_plans(_report([]), _fps([1]), mode="bogus")
        assert "bogus" not in PLAN_MODES

    def test_hybrid_collapses_only_tx_epochs(self):
        annotation = MechEpoch(
            kind=UNDO_JOURNALED, source="undo_valid", start=0,
            end=100, commit=50,
        )
        tx = MechEpoch(
            kind=UNDO_JOURNALED, source="tx:1", start=200, end=300,
            commit=250,
        )
        fps = _fps([10, 20, 30, 60, 90, 210, 220, 230, 260, 290])
        plan_set = build_crash_plans(
            _report([annotation, tx]), fps, mode="hybrid"
        )
        by_source = {p.source: p for p in plan_set.plans}
        assert by_source["undo_valid"].poisoned
        assert not by_source["tx:1"].poisoned
        # Only the tx epoch's interior points are skipped.
        assert plan_set.skipped_fids <= {5, 6, 7, 8, 9}
        assert plan_set.skipped_fids

    def test_mechanism_mode_collapses_annotation_epochs(self):
        annotation = MechEpoch(
            kind=UNDO_JOURNALED, source="undo_valid", start=0,
            end=100, commit=50,
        )
        fps = _fps([10, 20, 30, 60, 70, 90])
        plan_set = build_crash_plans(
            _report([annotation]), fps, mode="mechanism"
        )
        assert plan_set.skipped_fids == {1, 4}


class TestInjectorApplication:
    def test_apply_crash_plan_flips_planned(self):
        injector = FailureInjector(DetectorConfig())
        injector.failure_points = _fps([10, 20, 30, 60, 70, 90])
        epoch = MechEpoch(
            kind=UNDO_JOURNALED, source="undo", start=0, end=100,
            commit=50,
        )
        plan_set = build_crash_plans(
            _report([epoch]), injector.failure_points
        )
        skipped = injector.apply_crash_plan(plan_set)
        assert skipped == 2
        planned = [
            fp.fid for fp in injector.failure_points if fp.planned
        ]
        assert planned == [0, 2, 3, 5]

    def test_apply_none_plan_is_a_noop(self):
        injector = FailureInjector(DetectorConfig())
        injector.failure_points = _fps([10, 20])
        assert injector.apply_crash_plan(None) == 0
        assert all(fp.planned for fp in injector.failure_points)

    def test_failure_points_default_planned(self):
        (fp,) = _fps([10])
        assert fp.planned
