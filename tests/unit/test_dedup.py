"""Crash-image fingerprints, dedup classes, and the image memo
(repro.dedup)."""

import pytest

from repro.core.shadow import ShadowCheckpointCache, ShadowPM
from repro.dedup import DedupIndex, ImageMemo, PoolFold
from repro.pm.constants import PMEM_MMAP_HINT
from repro.pm.image import CrashImageMode
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.pm.snapshot import SnapshotStore
from repro.trace.recorder import NullRecorder

POOL_SIZE = 4096
BASE = PMEM_MMAP_HINT


def _memory(size=POOL_SIZE):
    memory = PersistentMemory(NullRecorder(), capture_ips=False)
    memory.map_pool(PMPool("pool", size, BASE))
    return memory


def _key(fid, variant=None, mask=None):
    return (fid, variant, mask)


class TestPoolFold:
    def test_equal_content_equal_fold(self):
        a, b = PoolFold(), PoolFold()
        a.reset_full(b"x" * 256, b"y" * 256)
        b.reset_full(b"x" * 256, b"y" * 256)
        assert a.record(()) == b.record(())

    def test_incremental_update_matches_fresh_fold(self):
        """Folding line-by-line from a base equals folding the final
        content directly (XOR out the old term, XOR in the new)."""
        base_data = bytearray(b"\x00" * 256)
        base_persist = bytearray(b"\x00" * 256)
        incremental = PoolFold()
        incremental.reset_full(bytes(base_data), bytes(base_persist))
        incremental.update_line(64, b"A" * 64, b"B" * 64)
        incremental.update_line(64, b"C" * 64, b"D" * 64)

        final_data = bytes(base_data)
        final_persist = bytes(base_persist)
        fresh = PoolFold()
        fresh.reset_full(final_data, final_persist)
        fresh.update_line(64, b"C" * 64, b"D" * 64)
        assert incremental.record(()) == fresh.record(())

    def test_data_and_persist_fold_independent(self):
        a, b = PoolFold(), PoolFold()
        a.reset_full(b"x" * 128, b"y" * 128)
        b.reset_full(b"x" * 128, b"z" * 128)
        a_rec, b_rec = a.record(()), b.record(())
        assert a_rec[0] == b_rec[0]  # same program view
        assert a_rec[1] != b_rec[1]  # different persisted view


class TestFingerprintClasses:
    def test_volatile_write_splits_classes_iff_image_differs(self):
        """A volatile (unflushed) store changes the as-written crash
        image, so the failure points land in different classes; a
        capture with nothing in between lands in the same class."""
        memory = _memory()
        store = SnapshotStore(fingerprints=True)
        memory.store(BASE, b"A" * 8)
        memory.flush(BASE, 8)
        memory.fence()
        memory.snapshot_delta(store)  # fid 0
        memory.store(BASE + 512, b"B" * 8)  # volatile: never flushed
        memory.snapshot_delta(store)  # fid 1: image differs
        memory.snapshot_delta(store)  # fid 2: image identical to 1
        keys = [_key(0), _key(1), _key(2)]
        index = DedupIndex.build(keys, store)
        assert index.class_of[_key(0)] != index.class_of[_key(1)]
        assert index.class_of[_key(1)] == index.class_of[_key(2)]
        assert index.deduped == 1
        assert index.rep_for(_key(2)) == _key(1)

    def test_same_bytes_after_volatile_write_same_class(self):
        """Rewriting a volatile line back to its previous content
        produces the same crash image — same class (the fold XORs the
        old term out and the identical term back in)."""
        memory = _memory()
        store = SnapshotStore(fingerprints=True)
        memory.snapshot_delta(store)  # fid 0: base image
        memory.store(BASE, b"A" * 8)
        memory.snapshot_delta(store)  # fid 1
        memory.store(BASE, b"Z" * 8)
        memory.snapshot_delta(store)  # fid 2
        memory.store(BASE, b"A" * 8)
        memory.snapshot_delta(store)  # fid 3: bytes back to fid 1's
        keys = [_key(1), _key(2), _key(3)]
        index = DedupIndex.build(keys, store)
        assert index.class_of[_key(1)] != index.class_of[_key(2)]
        assert index.class_of[_key(1)] == index.class_of[_key(3)]

    def test_variant_masks_always_split_classes(self):
        """Keys at the same failure point with different survivor
        masks never share a class, even though the fingerprint is
        identical."""
        memory = _memory()
        store = SnapshotStore(fingerprints=True)
        memory.store(BASE, b"A" * 8)
        memory.snapshot_delta(store)
        keys = [_key(0), _key(0, 0, 0), _key(0, 1, 1)]
        index = DedupIndex.build(keys, store)
        cids = [index.class_of[key] for key in keys]
        assert len(set(cids)) == 3

    def test_equal_masks_equal_images_share_class(self):
        memory = _memory()
        store = SnapshotStore(fingerprints=True)
        memory.store(BASE, b"A" * 8)
        memory.snapshot_delta(store)  # fid 0
        memory.snapshot_delta(store)  # fid 1 identical
        index = DedupIndex.build(
            [_key(0, 0, 1), _key(1, 0, 1)], store
        )
        assert index.dedup_classes == 1

    def test_fingerprints_off_yields_singletons(self):
        memory = _memory()
        store = SnapshotStore()  # fingerprints off
        memory.store(BASE, b"A" * 8)
        memory.snapshot_delta(store)
        memory.snapshot_delta(store)
        assert store.fingerprint(0) is None
        index = DedupIndex.build([_key(0), _key(1)], store)
        assert index.dedup_classes == 2
        assert index.deduped == 0

    def test_fallback_keys_cover_orphaned_members(self):
        memory = _memory()
        store = SnapshotStore(fingerprints=True)
        memory.store(BASE, b"A" * 8)
        memory.snapshot_delta(store)
        memory.snapshot_delta(store)
        memory.snapshot_delta(store)
        keys = [_key(0), _key(1), _key(2)]
        index = DedupIndex.build(keys, store)
        assert index.rep_keys() == [_key(0)]
        # Representative completed: nothing to fall back on.
        assert index.fallback_keys({_key(0): object()}) == []
        # Representative quarantined: every member must run itself.
        assert index.fallback_keys({}) == [_key(1), _key(2)]

    def test_hashed_bytes_accounted(self):
        memory = _memory()
        store = SnapshotStore(fingerprints=True)
        memory.store(BASE, b"A" * 8)
        memory.snapshot_delta(store)
        assert store.hashed_bytes >= 2 * POOL_SIZE  # base images
        before = store.hashed_bytes
        memory.store(BASE + 64, b"B" * 8)
        memory.snapshot_delta(store)
        delta_hashed = store.hashed_bytes - before
        assert 0 < delta_hashed < POOL_SIZE  # only dirty lines


class TestImageMemo:
    def _snapshots(self):
        """A store with three failure points and some persisted and
        volatile writes between them."""
        memory = _memory()
        store = SnapshotStore(fingerprints=True)
        memory.store(BASE, b"A" * 8)
        memory.flush(BASE, 8)
        memory.fence()
        memory.snapshot_delta(store)
        memory.store(BASE + 128, b"B" * 16)  # volatile
        memory.snapshot_delta(store)
        memory.store(BASE + 128, b"C" * 16)
        memory.flush(BASE + 128, 16)
        memory.fence()
        memory.snapshot_delta(store)
        return store

    def test_working_buffer_matches_materialize(self):
        store = self._snapshots()
        memo = ImageMemo(store)
        for fid in range(len(store)):
            (pool,) = memo.task_pools(fid, None)
            (image,) = store.materialize(fid)
            assert pool.read(pool.base, pool.size) == image.data

    def test_task_writes_are_restored_before_next_task(self):
        store = self._snapshots()
        memo = ImageMemo(store)
        (pool,) = memo.task_pools(0, None)
        pool.write(pool.base + 1024, b"task scribble")
        (pool,) = memo.task_pools(1, None)
        (image,) = store.materialize(1)
        assert pool.read(pool.base, pool.size) == image.data

    def test_variant_overlay_matches_variant_bytes(self):
        store = self._snapshots()
        memo = ImageMemo(store)
        fid = 1  # has a volatile line
        (image,) = store.materialize(fid)
        assert image.volatile_lines
        bits = len(image.volatile_lines)
        for mask in range(1 << bits):
            (pool,) = memo.task_pools(fid, mask)
            assert (
                pool.read(pool.base, pool.size)
                == image.variant_bytes(mask)
            ), f"mask {mask:#b}"

    def test_backwards_fid_rebuilds(self):
        store = self._snapshots()
        memo = ImageMemo(store)
        memo.task_pools(2, None)
        (pool,) = memo.task_pools(0, None)
        (image,) = store.materialize(0)
        assert pool.read(pool.base, pool.size) == image.data

    def test_memo_matches_legacy_as_written_path(self):
        store = self._snapshots()
        memo = ImageMemo(store)
        for fid in range(len(store)):
            (pool,) = memo.task_pools(fid, None)
            (image,) = store.materialize(fid)
            assert (
                pool.read(pool.base, pool.size)
                == image.bytes_for(CrashImageMode.AS_WRITTEN)
            )


class TestShadowCheckpointCache:
    def test_capture_and_lookup(self):
        shadow = ShadowPM()
        cache = ShadowCheckpointCache()
        cache.capture(0, shadow)
        assert 0 in cache
        assert len(cache) == 1
        assert cache[0] is not shadow  # a checkpoint copy

    def test_missing_without_rebuild_raises(self):
        cache = ShadowCheckpointCache()
        with pytest.raises(KeyError):
            cache[7]

    def test_skipped_checkpoint_rebuilds_once(self):
        built = []

        def rebuild(fid):
            built.append(fid)
            return ShadowPM()

        cache = ShadowCheckpointCache(rebuild)
        cache.note_skipped(3)
        assert cache.skipped == 1
        first = cache[3]
        second = cache[3]
        assert built == [3]
        assert cache.rebuilt == 1
        assert first is second


class TestRegionDigest:
    def _shadow_with_store(self, persisted):
        shadow = ShadowPM()
        shadow.record_store(BASE, 8, None, "pre")
        if persisted:
            shadow.record_flush(BASE)
            shadow.record_fence()
        return shadow

    def test_identical_histories_equal_digest(self):
        ranges = ((BASE, BASE + 8),)
        a = self._shadow_with_store(persisted=True)
        b = self._shadow_with_store(persisted=True)
        assert a.region_digest(ranges) == b.region_digest(ranges)

    def test_persistence_state_changes_digest(self):
        ranges = ((BASE, BASE + 8),)
        a = self._shadow_with_store(persisted=True)
        b = self._shadow_with_store(persisted=False)
        assert a.region_digest(ranges) != b.region_digest(ranges)

    def test_digest_scoped_to_ranges(self):
        """State outside the digested ranges does not affect it."""
        a = self._shadow_with_store(persisted=True)
        b = self._shadow_with_store(persisted=True)
        b.record_store(BASE + 4096, 8, None, "pre")
        ranges = ((BASE, BASE + 8),)
        assert a.region_digest(ranges) == b.region_digest(ranges)

    def test_commit_variable_in_range_changes_digest(self):
        a = self._shadow_with_store(persisted=True)
        b = self._shadow_with_store(persisted=True)
        b.register_commit_var("valid", BASE, 8)
        ranges = ((BASE, BASE + 8),)
        assert a.region_digest(ranges) != b.region_digest(ranges)
