"""The parallel failure-point engine's building blocks (repro.exec)."""

import pickle

import pytest

from repro._location import UNKNOWN_LOCATION, SourceLocation
from repro.core.config import DetectorConfig
from repro.core.frontend import _variant_masks
from repro.errors import CrashSummary, PostFailureCrash
from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder


class TestVariantMasks:
    def test_exhausts_single_bit_space(self):
        # One volatile line: the only non-all-survive mask is 0.  The
        # old attempt-budget loop silently under-produced here; now the
        # shortfall is explicit.
        masks, skipped = _variant_masks(fid=0, total_bits=1, count=5)
        assert masks == [0]
        assert skipped == 4

    def test_exhausts_two_bit_space(self):
        masks, skipped = _variant_masks(fid=3, total_bits=2, count=5)
        assert sorted(masks) == [0, 1, 2]  # 3 == all-survive, excluded
        assert skipped == 2

    def test_plenty_of_space_skips_nothing(self):
        masks, skipped = _variant_masks(fid=1, total_bits=8, count=5)
        assert len(masks) == 5
        assert len(set(masks)) == 5
        assert skipped == 0
        assert all(mask != 0xFF for mask in masks)

    def test_deterministic_per_failure_point(self):
        assert _variant_masks(2, 6, 4) == _variant_masks(2, 6, 4)
        assert (
            _variant_masks(2, 6, 4)[0] != _variant_masks(5, 6, 4)[0]
        )


class TestResolveExecutor:
    def test_default_is_serial(self):
        config = DetectorConfig(jobs=1, executor="auto")
        assert isinstance(resolve_executor(config), SerialExecutor)

    def test_jobs_enable_a_pool(self):
        config = DetectorConfig(jobs=4, executor="thread")
        executor = resolve_executor(config)
        assert isinstance(executor, ThreadExecutor)
        assert executor.jobs == 4

    def test_audit_forces_serial(self):
        config = DetectorConfig(jobs=4, executor="thread", audit=True)
        assert isinstance(resolve_executor(config), SerialExecutor)

    def test_fail_fast_forces_serial(self):
        config = DetectorConfig(
            jobs=4, executor="process", fail_fast=True
        )
        assert isinstance(resolve_executor(config), SerialExecutor)

    def test_explicit_serial_kind(self):
        config = DetectorConfig(jobs=8, executor="serial")
        assert isinstance(resolve_executor(config), SerialExecutor)

    def test_process_when_fork_available(self):
        config = DetectorConfig(jobs=2, executor="process")
        executor = resolve_executor(config)
        if ProcessExecutor.available():
            assert isinstance(executor, ProcessExecutor)
        else:
            assert isinstance(executor, ThreadExecutor)

    def test_auto_prefers_a_pool(self):
        config = DetectorConfig(jobs=2, executor="auto")
        executor = resolve_executor(config)
        assert isinstance(executor, (ProcessExecutor, ThreadExecutor))

    def test_unknown_kind_raises(self):
        config = DetectorConfig(jobs=2)
        config.executor = "gpu"
        with pytest.raises(ValueError):
            resolve_executor(config)


class TestEnvDefaults:
    def test_xfd_jobs(self, monkeypatch):
        monkeypatch.setenv("XFD_JOBS", "3")
        assert DetectorConfig().jobs == 3

    def test_xfd_jobs_invalid_degrades_to_one(self, monkeypatch):
        monkeypatch.setenv("XFD_JOBS", "lots")
        assert DetectorConfig().jobs == 1
        monkeypatch.setenv("XFD_JOBS", "-2")
        assert DetectorConfig().jobs == 1

    def test_xfd_executor(self, monkeypatch):
        monkeypatch.setenv("XFD_EXECUTOR", "thread")
        assert DetectorConfig().executor == "thread"
        monkeypatch.setenv("XFD_EXECUTOR", "quantum")
        assert DetectorConfig().executor == "auto"


def _double(_context, key):
    return key * 2


class TestExecutorsRunPhases:
    def test_serial_preserves_key_order(self):
        outcomes = SerialExecutor().run_phase(None, _double, [3, 1, 2])
        assert [o.value for o in outcomes] == [6, 2, 4]
        assert all(o.worker == "main" for o in outcomes)

    def test_thread_pool_preserves_key_order(self):
        executor = ThreadExecutor(4)
        keys = list(range(20))
        outcomes = executor.run_phase(None, _double, keys)
        assert [o.value for o in outcomes] == [k * 2 for k in keys]
        assert all(o.queue_wait >= 0.0 for o in outcomes)
        executor.close()

    def test_thread_pool_empty_phase(self):
        assert ThreadExecutor(2).run_phase(None, _double, []) == []


class TestMetricsMerge:
    def test_merges_every_metric_kind(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("hits", 2)
        b.inc("hits", 3)
        b.inc("misses")
        a.gauge("depth").set(5)
        b.gauge("depth").set(7)
        a.timer("t").observe(1.0)
        b.timer("t").observe(3.0)
        a.histogram("h", (10, 100)).observe(5)
        b.histogram("h", (10, 100)).observe(50)
        a.merge(b)
        assert a.value("hits") == 5
        assert a.value("misses") == 1
        assert a.value("depth") == 7
        timer = a.get("t")
        assert timer.count == 2
        assert timer.total == 4.0
        assert timer.min == 1.0
        assert timer.max == 3.0
        hist = a.get("h")
        assert hist.count == 2
        assert hist.counts[:2] == [1, 1]

    def test_merge_into_empty_equals_copy(self):
        src = MetricsRegistry()
        src.inc("x", 9)
        src.timer("t").observe(0.5)
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.value("x") == 9
        assert dst.get("t").count == 1

    def test_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", (1, 2))
        b.histogram("h", (1, 2, 3))
        with pytest.raises(ValueError):
            a.merge(b)


class TestSpanSynthesis:
    def test_add_completed_nests_under_open_span(self):
        spans = SpanRecorder()
        with spans.span("backend"):
            child = spans.add_completed("post_replay", 0.25, fid=1)
        assert spans.first("backend").children == [child]
        assert abs(child.duration - 0.25) < 1e-9
        assert child.attrs == {"fid": 1}

    def test_add_completed_at_top_level_is_a_root(self):
        spans = SpanRecorder()
        span = spans.add_completed("orphan", 0.1)
        assert span in spans.roots

    def test_negative_seconds_clamped(self):
        spans = SpanRecorder()
        span = spans.add_completed("x", -1.0)
        assert span.duration == 0.0


class TestCrossProcessIdentity:
    def test_unknown_location_survives_pickling(self):
        clone = pickle.loads(pickle.dumps(UNKNOWN_LOCATION))
        assert clone is UNKNOWN_LOCATION

    def test_real_location_roundtrips(self):
        loc = SourceLocation("a.py", 12, "f")
        clone = pickle.loads(pickle.dumps(loc))
        assert clone == loc
        assert clone is not UNKNOWN_LOCATION

    def test_crash_summary_preserves_message(self):
        try:
            raise KeyError("missing root object")
        except KeyError as exc:
            direct = PostFailureCrash(3, exc)
            shipped = PostFailureCrash(3, CrashSummary(repr(exc)))
        assert str(shipped) == str(direct)
