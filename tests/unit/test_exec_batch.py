"""Batched dispatch and the warm persistent pool (repro.exec)."""

import pytest

from repro.core.config import DetectorConfig
from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WarmProcessExecutor,
    plan_batches,
    resolve_executor,
)

needs_fork = pytest.mark.skipif(
    not ProcessExecutor.available(), reason="fork start method required"
)


class TestPlanBatches:
    def test_contiguous_chunks_in_key_order(self):
        keys = [(fid, None, None) for fid in range(10)]
        batches = plan_batches(keys, 4)
        assert batches == [keys[0:4], keys[4:8], keys[8:10]]

    def test_batch_size_one_is_singletons(self):
        keys = [(fid, None, None) for fid in range(3)]
        assert plan_batches(keys, 1) == [[key] for key in keys]
        assert plan_batches(keys, 0) == [[key] for key in keys]

    def test_backward_fid_jump_closes_the_batch(self):
        # A dedup fallback wave (or a variant sweep restart) re-issues
        # earlier fids; the memo cursor must never be asked to walk
        # backwards inside a batch.
        keys = [(0, None, None), (3, None, None), (1, None, None),
                (2, None, None)]
        batches = plan_batches(keys, 10)
        assert batches == [
            [(0, None, None), (3, None, None)],
            [(1, None, None), (2, None, None)],
        ]

    def test_repeated_fid_stays_in_batch(self):
        # Variants of one failure point share a fid; equal fids are
        # forward motion, not a jump.
        keys = [(1, None, None), (1, 0, 7), (1, 1, 3), (2, None, None)]
        assert plan_batches(keys, 10) == [keys]

    def test_non_tuple_keys_batch_by_size(self):
        assert plan_batches(list(range(5)), 2) == [[0, 1], [2, 3], [4]]

    def test_empty(self):
        assert plan_batches([], 4) == []


def _double(_context, key):
    return key * 2


def _fail_odd(_context, key):
    if key % 2:
        raise ValueError(f"odd key {key}")
    return key * 2


class TestBatchedExecutors:
    def test_thread_batched_matches_serial(self):
        keys = list(range(17))
        reference = [
            o.value for o in SerialExecutor().run_phase(
                None, _double, keys
            )
        ]
        for batch_size in (1, 4, 16, 100):
            executor = ThreadExecutor(4, batch_size=batch_size)
            outcomes = executor.run_phase(None, _double, keys)
            assert [o.value for o in outcomes] == reference
            executor.close()

    def test_batch_error_stays_per_key(self):
        # One crashed task must not take its batchmates down.
        executor = ThreadExecutor(2, batch_size=8)
        outcomes = executor.run_phase(None, _fail_odd, list(range(6)))
        assert [o.value for o in outcomes] == [0, None, 4, None, 8, None]
        assert [type(o.error) for o in outcomes[1::2]] == [ValueError] * 3
        executor.close()

    @needs_fork
    def test_process_batched_roundtrip(self):
        executor = ProcessExecutor(2, batch_size=4)

        class Ctx:
            pass

        outcomes = executor.run_phase(Ctx(), _double, list(range(9)))
        assert [o.value for o in outcomes] == [k * 2 for k in range(9)]
        assert all(o.worker.startswith("pid-") for o in outcomes)
        executor.close()


@needs_fork
class TestWarmProcessExecutor:
    def test_two_phases_reuse_workers(self):
        executor = WarmProcessExecutor(2, batch_size=3)
        try:
            executor.prewarm()
            pids_before = {
                w.process.pid for w in executor._workers
            }
            first = executor.run_phase(None, _double, list(range(7)))
            second = executor.run_phase(None, _double, list(range(5)))
            assert [o.value for o in first] == [k * 2 for k in range(7)]
            assert [o.value for o in second] == [k * 2 for k in range(5)]
            pids_after = {w.process.pid for w in executor._workers}
            assert pids_after == pids_before  # nobody respawned
            labels = {o.worker for o in first + second}
            assert labels <= {f"pid-{pid}" for pid in pids_before}
        finally:
            executor.close()
        assert not executor._workers

    def test_per_key_errors_ship_back(self):
        executor = WarmProcessExecutor(2, batch_size=4)
        try:
            outcomes = executor.run_phase(
                None, _fail_odd, list(range(6))
            )
            assert [o.value for o in outcomes] == \
                [0, None, 4, None, 8, None]
            for outcome in outcomes[1::2]:
                assert isinstance(outcome.error, ValueError)
        finally:
            executor.close()

    def test_unpicklable_phase_falls_back_to_cold_path(self):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("not today")

        executor = WarmProcessExecutor(2, batch_size=4)
        try:
            outcomes = executor.run_phase(
                Unpicklable(), _double, list(range(4))
            )
            assert [o.value for o in outcomes] == [0, 2, 4, 6]
        finally:
            executor.close()

    def test_empty_phase(self):
        executor = WarmProcessExecutor(2)
        try:
            assert executor.run_phase(None, _double, []) == []
        finally:
            executor.close()

    def test_close_is_idempotent(self):
        executor = WarmProcessExecutor(2)
        executor.prewarm()
        executor.close()
        executor.close()


class TestResolveWarm:
    @needs_fork
    def test_process_defaults_to_warm(self):
        config = DetectorConfig(jobs=2, executor="process")
        executor = resolve_executor(config)
        try:
            assert isinstance(executor, WarmProcessExecutor)
            assert executor.batch_size == config.batch_size
        finally:
            executor.close()

    @needs_fork
    def test_no_warm_pool_gives_cold_process(self):
        config = DetectorConfig(
            jobs=2, executor="process", warm_pool=False
        )
        executor = resolve_executor(config)
        try:
            assert isinstance(executor, ProcessExecutor)
            assert not isinstance(executor, WarmProcessExecutor)
        finally:
            executor.close()

    def test_thread_gets_batch_size(self):
        config = DetectorConfig(
            jobs=2, executor="thread", batch_size=5
        )
        executor = resolve_executor(config)
        assert isinstance(executor, ThreadExecutor)
        assert executor.batch_size == 5
        executor.close()


class TestEnvDefaults:
    def test_xfd_batch_size(self, monkeypatch):
        monkeypatch.setenv("XFD_BATCH_SIZE", "16")
        assert DetectorConfig().batch_size == 16

    def test_xfd_batch_size_invalid_degrades(self, monkeypatch):
        monkeypatch.setenv("XFD_BATCH_SIZE", "many")
        assert DetectorConfig().batch_size == 8
        monkeypatch.setenv("XFD_BATCH_SIZE", "-3")
        assert DetectorConfig().batch_size == 1

    def test_xfd_batch_size_default(self, monkeypatch):
        monkeypatch.delenv("XFD_BATCH_SIZE", raising=False)
        assert DetectorConfig().batch_size == 8

    def test_xfd_warm_pool(self, monkeypatch):
        monkeypatch.delenv("XFD_WARM_POOL", raising=False)
        assert DetectorConfig().warm_pool is True
        monkeypatch.setenv("XFD_WARM_POOL", "0")
        assert DetectorConfig().warm_pool is False
        monkeypatch.setenv("XFD_WARM_POOL", "on")
        assert DetectorConfig().warm_pool is True
