"""Tests for the frontend execution engine, the detector facade, and
the report type."""

import pytest

from repro._location import UNKNOWN_LOCATION
from repro.core import BugKind, DetectorConfig, XFDetector
from repro.core.frontend import Frontend
from repro.core.report import Bug, DetectionReport, DetectionStats
from repro.pm.image import CrashImageMode
from repro.pmdk import I64, ObjectPool, Struct, U64, pmem
from repro.workloads.base import Workload


class MiniRoot(Struct):
    a = I64()
    b = I64()
    flag = U64()


class MiniWorkload(Workload):
    """Two persisted updates committed by a flag; post reads what the
    flag says is valid (the standard low-level commit-variable
    pattern)."""

    name = "mini"
    FAULTS = {"skip_persist_b": ("R", "b not persisted")}

    def _annotate(self, ctx, root):
        name = ctx.interface.add_commit_var(
            root.field_addr("flag"), 8, "flag"
        )
        ctx.interface.add_commit_range(name, root.field_addr("a"), 16)

    def setup(self, ctx):
        pool = ObjectPool.create(ctx.memory, "mini", "m", root_cls=MiniRoot)
        root = pool.root
        root.a = 1
        root.b = 2
        root.flag = 0
        pmem.persist(ctx.memory, root.address, MiniRoot.SIZE)

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "mini", "m", MiniRoot)
        root = pool.root
        self._annotate(ctx, root)
        root.a = 10
        pmem.persist(ctx.memory, root.field_addr("a"), 8)
        root.b = 20
        if not self.has_fault("skip_persist_b"):
            pmem.persist(ctx.memory, root.field_addr("b"), 8)
        root.flag = 1
        pmem.persist(ctx.memory, root.field_addr("flag"), 8)

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "mini", "m", MiniRoot)
        root = pool.root
        self._annotate(ctx, root)
        if root.flag:  # benign commit-variable read
            _ = (root.a, root.b)


class CrashingPost(MiniWorkload):
    name = "crashing"

    def post_failure(self, ctx):
        raise ValueError("recovery exploded")


class TestFrontend:
    def test_stages_and_counts(self):
        result = Frontend(DetectorConfig()).run(MiniWorkload())
        assert result.workload_name == "mini"
        assert len(result.failure_points) == 3
        assert len(result.post_runs) == len(result.failure_points)
        assert result.pre_seconds > 0
        assert len(result.pre_recorder) > 0
        for run in result.post_runs:
            assert run.recorder.stage == "post"
            assert run.crash is None

    def test_no_injection_during_setup(self):
        result = Frontend(DetectorConfig()).run(MiniWorkload())
        # Setup persists the whole root but contributes no failure
        # points; only the three pre_failure persists do.
        assert len(result.failure_points) == 3

    def test_post_runs_isolated_from_pre_memory(self):
        result = Frontend(DetectorConfig()).run(MiniWorkload())
        first = result.post_runs[0]
        # The first failure point precedes a's fence: the post image in
        # as-written mode contains a=10 already.
        pool = first.failure_point.images[0]
        assert pool.pool_name == "mini"

    def test_post_crash_captured(self):
        result = Frontend(DetectorConfig()).run(CrashingPost())
        assert all(run.crash is not None for run in result.post_runs)

    def test_strict_mode_images(self):
        config = DetectorConfig(
            crash_image_mode=CrashImageMode.PERSISTED_ONLY
        )
        result = Frontend(config).run(MiniWorkload())
        assert result.failure_points  # images built without error


class TestDetectorFacade:
    def test_correct_workload_clean(self):
        report = XFDetector().run(MiniWorkload())
        assert report.bugs == []
        assert report.stats.failure_points == 3
        assert report.stats.pre_trace_events > 0
        assert report.stats.post_trace_events > 0

    def test_faulty_workload_detected(self):
        report = XFDetector().run(
            MiniWorkload(faults={"skip_persist_b"})
        )
        assert len(report.races) >= 1
        assert report.has_cross_failure_bugs

    def test_post_crash_reported_as_bug(self):
        report = XFDetector().run(CrashingPost())
        assert len(report.crashes) == report.stats.failure_points
        assert "recovery exploded" in report.crashes[0].detail

    def test_default_config_constructed(self):
        detector = XFDetector()
        assert detector.config.inject_failures is True


class TestReport:
    def _bug(self, kind=BugKind.CROSS_FAILURE_RACE, fp=0, detail="d"):
        return Bug(kind=kind, detail=detail, address=0x10, size=8,
                   failure_point=fp)

    def test_unique_bugs_dedup_across_failure_points(self):
        report = DetectionReport("w")
        report.bugs = [self._bug(fp=0), self._bug(fp=1), self._bug(fp=2)]
        assert len(report.unique_bugs()) == 1

    def test_of_kind_filters(self):
        report = DetectionReport("w")
        report.bugs = [
            self._bug(),
            self._bug(kind=BugKind.PERFORMANCE, detail="p"),
        ]
        assert len(report.races) == 1
        assert len(report.perf_bugs) == 1
        assert report.semantic_bugs == []

    def test_summary_and_format(self):
        report = DetectionReport("w")
        report.bugs = [self._bug()]
        assert "cross-failure race" in report.summary()
        assert "w:" in report.summary()
        formatted = report.format()
        assert formatted.splitlines()[0] == report.summary()
        assert len(formatted.splitlines()) == 2

    def test_stats_total(self):
        stats = DetectionStats(
            pre_failure_seconds=1.0,
            post_failure_seconds=2.0,
            backend_seconds=0.5,
        )
        assert stats.total_seconds == 3.5

    def test_bug_str_contains_location(self):
        from repro._location import SourceLocation

        bug = Bug(
            kind=BugKind.CROSS_FAILURE_RACE,
            detail="read of x",
            address=0x100,
            size=8,
            failure_point=2,
            reader_ip=SourceLocation("r.py", 3, "read"),
            writer_ip=SourceLocation("w.py", 4, "write"),
        )
        text = str(bug)
        assert "r.py:3" in text
        assert "w.py:4" in text
        assert "failure#2" in text
        assert bug.reader_ip is not UNKNOWN_LOCATION


class TestWorkloadBase:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            MiniWorkload(faults={"nope"})

    def test_fault_flags_filter(self):
        assert MiniWorkload.fault_flags("R") == ["skip_persist_b"]
        assert MiniWorkload.fault_flags("P") == []

    def test_repr(self):
        text = repr(MiniWorkload(faults={"skip_persist_b"}, test_size=2))
        assert "skip_persist_b" in text
