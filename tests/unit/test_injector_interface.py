"""Tests for the failure injector and the Table 2 annotation API."""

import pytest

from repro.core.config import DetectorConfig
from repro.core.injector import FailureInjector
from repro.core.interface import DetectionComplete, XFInterface
from repro.errors import AnnotationError
from repro.pm.pool import PMPool
from repro.pmdk import pmem
from repro.trace.events import EventKind


def wire(memory, config=None):
    injector = FailureInjector(config or DetectorConfig())
    memory.add_ordering_listener(injector)
    memory.add_observer(injector)
    memory.roi_active = True
    return injector


class TestInjection:
    def test_failure_point_before_each_ordering_point(self, memory,
                                                      pool):
        injector = wire(memory)
        pmem.memcpy_persist(memory, pool.base, b"a")
        pmem.memcpy_persist(memory, pool.base + 64, b"b")
        assert len(injector.failure_points) == 2
        # Marker precedes the fence in the trace.
        kinds = [e.kind for e in memory.recorder.events]
        fp = kinds.index(EventKind.FAILURE_POINT)
        assert kinds[fp + 1] is EventKind.FLUSH or (
            kinds[fp + 1] is EventKind.FENCE
        )

    def test_snapshot_taken_before_fence(self, memory, pool):
        injector = wire(memory)
        # Previously persisted value.
        pmem.memcpy_persist(memory, pool.base, b"OLD")
        memory.store(pool.base, b"NEW")
        memory.flush(pool.base, 3)
        memory.fence()
        from repro.pm.image import CrashImageMode

        image = injector.failure_points[-1].images[0]
        strict = image.bytes_for(CrashImageMode.PERSISTED_ONLY)
        as_written = image.bytes_for(CrashImageMode.AS_WRITTEN)
        assert as_written[:3] == b"NEW"
        assert strict[:3] == b"OLD"

    def test_no_failure_point_without_pm_ops(self, memory, pool):
        """Optimization 2: back-to-back ordering points with no PM data
        operation in between get one failure point, not two."""
        injector = wire(memory)
        memory.store(pool.base, b"x")
        memory.flush(pool.base, 1)
        memory.fence()  # failure point 0
        # A redundant flush+fence with no new store: second fence is
        # not even an ordering point (nothing pending).
        memory.flush(pool.base, 1)
        memory.fence()
        assert len(injector.failure_points) == 1

    def test_empty_failure_points_kept_when_disabled(self, memory,
                                                     pool):
        config = DetectorConfig(skip_empty_failure_points=False)
        injector = wire(memory, config)
        memory.store(pool.base, b"x")
        memory.flush(pool.base, 1)
        memory.fence()
        memory.store(pool.base, b"y")  # store -> flush of OTHER line
        memory.flush(pool.base + 64, 1)
        memory.fence()  # not an ordering point (nothing pending)
        memory.flush(pool.base, 1)
        memory.fence()  # ordering point without data ops in between?
        # With the optimization off, every ordering point fires.
        assert len(injector.failure_points) >= 2

    def test_max_failure_points_cap(self, memory, pool):
        config = DetectorConfig(max_failure_points=2)
        injector = wire(memory, config)
        for i in range(5):
            pmem.memcpy_persist(memory, pool.base + 64 * i, b"x")
        assert len(injector.failure_points) == 2

    def test_injection_disabled(self, memory, pool):
        config = DetectorConfig(inject_failures=False)
        injector = wire(memory, config)
        pmem.memcpy_persist(memory, pool.base, b"x")
        assert injector.failure_points == []

    def test_no_injection_outside_roi(self, memory, pool):
        injector = wire(memory)
        memory.roi_active = False
        pmem.memcpy_persist(memory, pool.base, b"x")
        assert injector.failure_points == []

    def test_no_injection_in_skip_failure_region(self, memory, pool):
        injector = wire(memory)
        interface = XFInterface(memory)
        with interface.skip_failure():
            pmem.memcpy_persist(memory, pool.base, b"x")
        assert injector.failure_points == []

    def test_no_injection_inside_library_region(self, memory, pool):
        injector = wire(memory)
        with memory.library_region("internals"):
            pmem.memcpy_persist(memory, pool.base, b"x")
        assert injector.failure_points == []

    def test_no_injection_after_complete_detection(self, memory, pool):
        injector = wire(memory)
        XFInterface(memory).complete_detection()
        pmem.memcpy_persist(memory, pool.base, b"x")
        assert injector.failure_points == []

    def test_forced_failure_point(self, memory, pool):
        injector = wire(memory)
        XFInterface(memory).add_failure_point()
        assert len(injector.failure_points) == 1

    def test_forced_point_bypasses_skip_empty_not_roi(self, memory,
                                                      pool):
        injector = wire(memory)
        memory.roi_active = False
        XFInterface(memory).add_failure_point()
        assert injector.failure_points == []

    def test_trace_indexes_are_increasing(self, memory, pool):
        injector = wire(memory)
        for i in range(3):
            pmem.memcpy_persist(memory, pool.base + 64 * i, b"x")
        indexes = [fp.trace_index for fp in injector.failure_points]
        assert indexes == sorted(indexes)
        assert len(set(indexes)) == 3


class TestInterface:
    def test_roi_toggles_flag_and_emits_markers(self, memory):
        interface = XFInterface(memory)
        memory.roi_active = False
        interface.roi_begin()
        assert memory.roi_active
        interface.roi_end()
        assert not memory.roi_active
        kinds = [e.kind for e in memory.recorder.events]
        assert kinds == [EventKind.ROI_BEGIN, EventKind.ROI_END]

    def test_condition_false_is_noop(self, memory):
        interface = XFInterface(memory)
        interface.roi_begin(condition=False)
        interface.skip_detection_begin(condition=False)
        interface.add_commit_var(0, 8)  # condition-less variant works
        assert memory.roi_active is False
        assert memory.skip_detection_depth == 0

    def test_unbalanced_ends_rejected(self, memory):
        interface = XFInterface(memory)
        with pytest.raises(AnnotationError):
            interface.skip_failure_end()
        with pytest.raises(AnnotationError):
            interface.skip_detection_end()

    def test_complete_detection_post_raises(self, memory):
        interface = XFInterface(memory, stage="post")
        with pytest.raises(DetectionComplete):
            interface.complete_detection()

    def test_complete_detection_pre_sets_flag(self, memory):
        interface = XFInterface(memory, stage="pre")
        interface.complete_detection()
        assert memory.detection_complete

    def test_commit_var_markers(self, memory):
        interface = XFInterface(memory)
        name = interface.add_commit_var(0x100, 8)
        interface.add_commit_range(name, 0x200, 16)
        var_ev, range_ev = memory.recorder.events
        assert var_ev.kind is EventKind.COMMIT_VAR
        assert var_ev.info == name == "commit@0x100"
        assert range_ev.kind is EventKind.COMMIT_RANGE
        assert (range_ev.addr, range_ev.size) == (0x200, 16)

    def test_paper_style_aliases(self, memory):
        interface = XFInterface(memory)
        memory.roi_active = False
        interface.RoIBegin()
        assert memory.roi_active
        interface.RoIEnd()
        interface.skipFailureBegin()
        interface.skipFailureEnd()
        interface.skipDetectionBegin()
        interface.skipDetectionEnd()
        interface.addCommitVar(0, 8, "v")
        interface.addCommitRange("v", 8, 8)

    def test_context_managers_restore_on_exception(self, memory):
        interface = XFInterface(memory)
        with pytest.raises(RuntimeError):
            with interface.skip_detection():
                raise RuntimeError()
        assert memory.skip_detection_depth == 0
