"""Tests for the pool inspector and its CLI wiring."""

import pytest

from repro.cli import main
from repro.pmdk import I64, ObjectPool, Struct
from repro.pmdk.pmemobj.inspect import hexdump, inspect_pool
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.trace.recorder import TraceRecorder


class InspectRoot(Struct):
    value = I64()


def fresh_memory():
    return PersistentMemory(TraceRecorder(), capture_ips=False)


class TestInspectPool:
    def test_healthy_pool_report(self):
        memory = fresh_memory()
        pool = ObjectPool.create(memory, "p", "demo-layout",
                                 root_cls=InspectRoot)
        pool.root.value = 5
        text = inspect_pool(memory, "p")
        assert "magic" in text and "(ok)" in text
        assert "'demo-layout'" in text
        assert "checksum" in text
        assert "clean" in text  # no interrupted transaction
        assert "heap:" in text

    def test_interrupted_transaction_visible(self):
        from repro.pmdk.pmemobj.tx import Transaction

        memory = fresh_memory()
        pool = ObjectPool.create(memory, "p", "demo",
                                 root_cls=InspectRoot)
        tx = Transaction(pool)
        tx.__enter__()
        tx.add_field(pool.root, "value")
        pool.root.value = 99
        # Abandon the transaction, as a crash would.
        pool.active_tx = None
        text = inspect_pool(memory, "p")
        assert "interrupted transaction!" in text
        assert "1 valid" in text

    def test_half_created_pool_reported_bad(self):
        memory = fresh_memory()
        memory.map_pool(PMPool("raw", size=1 << 16))
        text = inspect_pool(memory, "raw")
        assert "BAD" in text

    def test_checksum_mismatch_reported(self):
        from repro.pmdk.pmemobj.pool import PoolHeader

        memory = fresh_memory()
        pool = ObjectPool.create(memory, "p", "demo",
                                 root_cls=InspectRoot)
        memory.store(
            pool.base + PoolHeader.offset_of("uuid_lo"), b"\xff" * 8
        )
        text = inspect_pool(memory, "p")
        assert "MISMATCH" in text

    def test_unknown_pool_rejected(self):
        with pytest.raises(KeyError):
            inspect_pool(fresh_memory(), "ghost")


class TestHexdump:
    def test_format(self):
        memory = fresh_memory()
        memory.map_pool(PMPool("p", size=4096))
        base = memory.pools[0].base
        memory.store(base, b"Hello, PM!\x00\x01")
        text = hexdump(memory, base, 16)
        assert "48 65 6c 6c 6f" in text  # "Hello"
        assert "Hello, PM!" in text
        assert text.startswith(f"{base:#014x}")

    def test_multiple_rows(self):
        memory = fresh_memory()
        memory.map_pool(PMPool("p", size=4096))
        base = memory.pools[0].base
        text = hexdump(memory, base, 40)
        assert len(text.splitlines()) == 3


class TestInspectCli:
    def test_inspect_subcommand(self, capsys):
        code = main([
            "inspect", "linkedlist", "--init", "1", "--test", "1",
            "--fault", "unlogged_length",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "crash image at failure point" in out
        assert "undo log" in out

    def test_inspect_strict_mode(self, capsys):
        code = main([
            "inspect", "queue", "--test", "1", "--strict-image",
        ])
        assert code == 0
        assert "persisted-only" in capsys.readouterr().out

    def test_inspect_bad_failure_point(self, capsys):
        code = main([
            "inspect", "linkedlist", "--test", "1",
            "--failure-point", "999",
        ])
        assert code == 1
        assert "out of range" in capsys.readouterr().out
