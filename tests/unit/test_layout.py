"""Tests for the persistent struct layout system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pmdk import (
    Array,
    Blob,
    Embed,
    F64,
    I32,
    I64,
    Ptr,
    Struct,
    U8,
    U16,
    U32,
    U64,
)


class Point(Struct):
    x = I64()
    y = I64()


class Mixed(Struct):
    flag = U8()
    # natural alignment should pad flag to place count at offset 8
    count = U64()
    short = U16()
    tag = Blob(5)


class WithEmbed(Struct):
    header = U32()
    point = Embed(Point)


class WithArray(Struct):
    n = U64()
    values = Array(I64, 4)


class TestLayoutComputation:
    def test_offsets_in_declaration_order(self):
        assert Point.offset_of("x") == 0
        assert Point.offset_of("y") == 8
        assert Point.SIZE == 16

    def test_natural_alignment_padding(self):
        assert Mixed.offset_of("flag") == 0
        assert Mixed.offset_of("count") == 8
        assert Mixed.offset_of("short") == 16
        assert Mixed.offset_of("tag") == 18
        assert Mixed.ALIGN == 8
        assert Mixed.SIZE == 24  # 23 rounded up to alignment

    def test_inheritance_appends_fields(self):
        class Point3(Point):
            z = I64()

        assert Point3.offset_of("x") == 0
        assert Point3.offset_of("z") == 16
        assert Point3.SIZE == 24
        # The parent is untouched.
        assert Point.SIZE == 16

    def test_embed_layout(self):
        assert WithEmbed.offset_of("point") == 8  # aligned to 8
        assert WithEmbed.SIZE == 24

    def test_array_layout(self):
        assert WithArray.offset_of("values") == 8
        assert WithArray.SIZE == 8 + 4 * 8


class TestFieldAccess:
    def test_scalar_roundtrip(self, memory, pool):
        point = Point(memory, pool.base)
        point.x = -5
        point.y = 7
        assert point.x == -5
        assert point.y == 7

    def test_unsigned_types(self, memory, pool):
        class Unsigned(Struct):
            a = U8()
            b = U16()
            c = U32()
            d = U64()
            e = F64()

        s = Unsigned(memory, pool.base)
        s.a, s.b, s.c, s.d, s.e = 255, 65535, 2**32 - 1, 2**64 - 1, 1.5
        assert (s.a, s.b, s.c, s.d, s.e) == (
            255, 65535, 2**32 - 1, 2**64 - 1, 1.5
        )

    def test_blob_pads_and_rejects_overflow(self, memory, pool):
        s = Mixed(memory, pool.base)
        s.tag = b"ab"
        assert s.tag == b"ab\x00\x00\x00"
        with pytest.raises(ValueError):
            s.tag = b"toolong"

    def test_ptr_null_view_rejected(self, memory):
        with pytest.raises(ValueError):
            Point(memory, 0)

    def test_embed_returns_bound_view(self, memory, pool):
        s = WithEmbed(memory, pool.base)
        s.point.x = 9
        assert s.point.x == 9
        assert s.point.address == pool.base + 8
        with pytest.raises(AttributeError):
            s.point = None

    def test_array_access(self, memory, pool):
        s = WithArray(memory, pool.base)
        for i in range(4):
            s.values[i] = i * 11
        assert [s.values[i] for i in range(4)] == [0, 11, 22, 33]
        assert len(s.values) == 4
        with pytest.raises(IndexError):
            s.values[4]
        with pytest.raises(AttributeError):
            s.values = [1, 2, 3, 4]

    def test_array_element_range(self, memory, pool):
        s = WithArray(memory, pool.base)
        rng = s.values.element_range(2)
        assert rng.start == pool.base + 8 + 16
        assert rng.size == 8

    def test_field_range_helpers(self, memory, pool):
        point = Point(memory, pool.base)
        rng = point.field_range("y")
        assert rng.start == point.field_addr("y") == pool.base + 8
        assert rng.size == 8
        whole = point.whole_range()
        assert (whole.start, whole.size) == (pool.base, 16)

    def test_equality_and_repr(self, memory, pool):
        a = Point(memory, pool.base)
        b = Point(memory, pool.base)
        c = Point(memory, pool.base + 16)
        assert a == b
        assert a != c
        assert hash(a) == hash(b)
        assert "Point@" in repr(a)

    def test_access_emits_trace_events(self, memory, pool):
        from repro.trace.events import EventKind

        point = Point(memory, pool.base)
        point.x = 1
        _ = point.x
        kinds = [e.kind for e in memory.recorder.events]
        assert kinds == [EventKind.STORE, EventKind.LOAD]


@given(st.integers(-(2**63), 2**63 - 1), st.integers(0, 2**64 - 1))
def test_signed_unsigned_roundtrip_property(signed, unsigned):
    import struct as _struct

    assert _struct.unpack("<q", I64().encode(signed))[0] == signed
    assert _struct.unpack("<Q", U64().encode(unsigned))[0] == unsigned
