"""The live-event schema: round-trips, version guard, bus semantics."""

import json

import pytest

from repro.obs.live import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    LiveBus,
    LiveEvent,
    SchemaVersionError,
    event_from_dict,
    normalized_stream,
    read_events,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class CaptureSink:
    def __init__(self, fail_on=None):
        self.events = []
        self.closed = False
        self.fail_on = fail_on

    def handle(self, event):
        if self.fail_on is not None and event.kind == self.fail_on:
            raise RuntimeError("sink exploded")
        self.events.append(event)

    def close(self):
        self.closed = True

    def kinds(self):
        return [event.kind for event in self.events]


def _bus(*sinks, interval=1.0):
    """A deterministic bus: fake clock, no ticker thread."""
    clock = FakeClock()
    bus = LiveBus(
        sinks, run_id="test-run", clock=clock,
        heartbeat_interval=interval, ticker=False,
    )
    return bus, clock


class TestSchema:
    def test_round_trip(self):
        event = LiveEvent(
            "finding", 7, 123.5, "run-1",
            {"bug_kind": "CROSS_FAILURE_RACE", "fid": 3},
        )
        rebuilt = event_from_dict(event.to_dict())
        assert rebuilt == event

    def test_serialized_form_carries_version(self):
        record = LiveEvent("heartbeat", 1, 0.0, "r", {}).to_dict()
        assert record["v"] == SCHEMA_VERSION

    def test_every_kind_constructs(self):
        for kind in EVENT_KINDS:
            LiveEvent(kind, 1, 0.0, "r", {})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown live-event"):
            LiveEvent("frobnicate", 1, 0.0, "r", {})

    def test_future_schema_version_rejected(self):
        record = LiveEvent("finding", 1, 0.0, "r", {}).to_dict()
        record["v"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            event_from_dict(record)

    def test_missing_field_rejected(self):
        record = LiveEvent("finding", 1, 0.0, "r", {}).to_dict()
        del record["seq"]
        with pytest.raises(ValueError, match="seq"):
            event_from_dict(record)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict(["not", "a", "dict"])


class TestReadEvents:
    def test_reads_ndjson_and_skips_blanks(self, tmp_path):
        path = tmp_path / "events.ndjson"
        events = [
            LiveEvent("run_started", 1, 1.0, "r", {"workload": "w"}),
            LiveEvent("run_finished", 2, 2.0, "r", {}),
        ]
        path.write_text(
            "\n".join(json.dumps(e.to_dict()) for e in events)
            + "\n\n"
        )
        assert read_events(str(path)) == events

    def test_bad_json_reports_line_number(self, tmp_path):
        path = tmp_path / "events.ndjson"
        ok = json.dumps(
            LiveEvent("heartbeat", 1, 0.0, "r", {}).to_dict()
        )
        path.write_text(ok + "\n{truncated\n")
        with pytest.raises(ValueError, match=":2:"):
            read_events(str(path))


class TestNormalizedStream:
    def test_drops_wallclock_kinds_and_scrubs_fields(self):
        events = [
            LiveEvent("run_started", 1, 1.0, "a",
                      {"workload": "w", "jobs": 4,
                       "executor": "thread"}),
            LiveEvent("heartbeat", 2, 1.5, "a", {"points_done": 1}),
            LiveEvent("worker_spawned", 3, 1.6, "a", {"worker": "x"}),
            LiveEvent("point_completed", 4, 2.0, "a",
                      {"fid": 0, "worker": "x", "seconds": 0.25}),
            LiveEvent("worker_died", 5, 2.1, "a", {"worker": "x"}),
        ]
        projected = normalized_stream(events)
        kinds = [record["kind"] for record in projected]
        assert "heartbeat" not in kinds
        assert "worker_spawned" not in kinds
        assert "worker_died" not in kinds
        for record in projected:
            assert "ts" not in record and "seq" not in record
            assert "worker" not in record["data"]
            assert "seconds" not in record["data"]
            assert "jobs" not in record["data"]
            assert "executor" not in record["data"]

    def test_projection_ignores_envelope_noise(self):
        """Same logical stream, different run ids / timing / order →
        equal projections."""
        a = [
            LiveEvent("point_completed", 1, 1.0, "a",
                      {"fid": 0, "seconds": 0.5}),
            LiveEvent("finding", 2, 1.2, "a", {"fid": 0}),
        ]
        b = [
            LiveEvent("finding", 9, 7.7, "b", {"fid": 0}),
            LiveEvent("heartbeat", 10, 7.8, "b", {}),
            LiveEvent("point_completed", 11, 8.0, "b",
                      {"fid": 0, "seconds": 0.1}),
        ]
        assert normalized_stream(a) == normalized_stream(b)


class TestLiveBus:
    def test_events_fan_out_with_envelopes(self):
        sink = CaptureSink()
        bus, clock = _bus(sink)
        bus.emit("run_started", workload="w")
        clock.advance(0.1)
        bus.emit("point_injected", fid=0, reason="flush")
        assert sink.kinds() == ["run_started", "point_injected"]
        first, second = sink.events
        assert first.run_id == "test-run"
        assert second.seq > first.seq
        assert second.ts > first.ts

    def test_progress_aggregate_follows_stream(self):
        bus, _clock = _bus(CaptureSink())
        bus.emit("run_started", workload="w")
        bus.emit("phase_started", phase="post_exec", points=4)
        bus.emit("point_completed", phase="post_exec", fid=0)
        bus.emit("dedup_hit", stage="post_exec", fid=1)
        bus.emit("finding", bug_kind="PERFORMANCE")
        bus.emit("incident", incident_kind="hang")
        progress = bus.progress
        assert progress.workload == "w"
        assert progress.points_total == 4
        assert progress.points_done == 2  # completion + dedup clone
        assert progress.findings == 1
        assert progress.incidents == 1
        assert progress.dedup_ratio() == pytest.approx(0.5)

    def test_worker_lifecycle_synthesized(self):
        sink = CaptureSink()
        bus, _clock = _bus(sink)
        bus.emit("point_completed", fid=0, worker="pid-7")
        bus.emit("point_completed", fid=1, worker="pid-7")
        bus.emit(
            "incident", incident_kind="worker-death", phase="post_exec"
        )
        kinds = sink.kinds()
        assert kinds.count("worker_spawned") == 1
        assert kinds.count("worker_died") == 1
        assert kinds.index("worker_spawned") \
            < kinds.index("point_completed")

    def test_heartbeat_cadence_and_final_beat(self):
        sink = CaptureSink()
        bus, clock = _bus(sink, interval=1.0)
        bus.emit("run_started", workload="w")
        bus.emit("point_completed", fid=0)  # interval not yet elapsed
        clock.advance(1.5)
        bus.emit("point_completed", fid=1)  # elapsed → heartbeat
        bus.emit("run_finished")            # forced final heartbeat
        kinds = sink.kinds()
        assert kinds.count("heartbeat") == 2
        assert kinds[-1] == "run_finished"
        assert kinds[-2] == "heartbeat"
        # The beat follows the event that triggered it, so both
        # completions are already aggregated.
        beat = next(e for e in sink.events if e.kind == "heartbeat")
        assert beat.data["points_done"] == 2
        assert "elapsed_seconds" in beat.data

    def test_broken_sink_is_dropped_not_fatal(self, capsys):
        broken = CaptureSink(fail_on="finding")
        healthy = CaptureSink()
        bus, _clock = _bus(broken, healthy)
        bus.emit("finding", bug_kind="PERFORMANCE")
        bus.emit("point_completed", fid=0)
        assert "disabling it" in capsys.readouterr().err
        assert broken.kinds() == []  # dropped at the failing event
        assert healthy.kinds() == ["finding", "point_completed"]

    def test_close_is_idempotent_and_silences_emit(self):
        sink = CaptureSink()
        bus, _clock = _bus(sink)
        bus.emit("run_started", workload="w")
        bus.close()
        bus.close()
        assert sink.closed
        assert bus.emit("finding") is None
        assert sink.kinds() == ["run_started"]
