"""Sink behavior: NDJSON stream, Prometheus exposition, TTY progress,
and the span profile exports behind ``profile --top`` / ``--folded``."""

import io
import os

import pytest

from repro.obs.live import (
    EventStreamSink,
    LiveBus,
    LiveEvent,
    ProgressRenderer,
    PromFileSink,
    metric_name,
    parse_exposition,
    read_events,
    render_exposition,
    split_runs,
    write_textfile,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.telemetry import Telemetry


class TickClock:
    """A deterministic clock advancing a fixed step per call."""

    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def _event(kind, **data):
    return LiveEvent(kind, 1, 10.0, "run", data)


class TtyStringIO(io.StringIO):
    def isatty(self):
        return True


class TestEventStreamSink:
    def test_appends_across_sessions(self, tmp_path):
        """Two bus sessions on the same path leave two run segments —
        the append-only resume discipline."""
        path = str(tmp_path / "events.ndjson")
        for round_no in range(2):
            sink = EventStreamSink(path)
            bus = LiveBus(
                [sink], run_id=f"run-{round_no}", ticker=False,
                heartbeat_interval=0.0,
            )
            bus.emit("run_started", workload="w")
            bus.emit("run_finished")
            bus.close()
        events = read_events(path)
        segments = split_runs(events)
        assert len(segments) == 2
        assert {seg[0].run_id for seg in segments} \
            == {"run-0", "run-1"}
        # run_started + the forced final heartbeat + run_finished.
        assert sink.written == 3

    def test_each_line_is_flushed_immediately(self, tmp_path):
        path = str(tmp_path / "events.ndjson")
        sink = EventStreamSink(path)
        sink.handle(_event("point_injected", fid=0))
        # Readable before close: a killed run leaves a usable prefix.
        assert len(read_events(path)) == 1
        sink.close()


class TestPrometheus:
    def test_metric_name_mangling(self):
        assert metric_name("post.runs_total") == "xfd_post_runs_total"
        assert metric_name("0weird") == "xfd__0weird"

    def test_render_parse_round_trip_all_types(self):
        registry = MetricsRegistry()
        registry.counter("post.runs").inc(3)
        registry.gauge("pool.workers").set(4)
        timer = registry.timer("post_failure_seconds")
        timer.observe(0.5)
        timer.observe(1.5)
        histogram = registry.histogram("trace.len", buckets=(10, 100))
        histogram.observe(5)
        histogram.observe(50)
        histogram.observe(5000)  # overflow bucket
        text = render_exposition(
            registry, {"xfd_run_points_done": 7}
        )
        families = parse_exposition(text)
        assert families["xfd_post_runs"]["type"] == "counter"
        assert families["xfd_post_runs"]["samples"] \
            == [("xfd_post_runs", "", 3.0)]
        assert families["xfd_pool_workers"]["type"] == "gauge"
        summary = families["xfd_post_failure_seconds"]
        assert summary["type"] == "summary"
        assert ("xfd_post_failure_seconds_count", "", 2.0) \
            in summary["samples"]
        assert ("xfd_post_failure_seconds_sum", "", 2.0) \
            in summary["samples"]
        hist = families["xfd_trace_len"]
        assert hist["type"] == "histogram"
        buckets = {
            labels: value for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        }
        # Cumulative: 1 <= 10, 2 <= 100, 3 <= +Inf.
        assert buckets == {
            'le="10"': 1.0, 'le="100"': 2.0, 'le="+Inf"': 3.0,
        }
        assert families["xfd_run_points_done"]["type"] == "gauge"

    @pytest.mark.parametrize("text", [
        "orphan_sample 1\n",                       # sample w/o TYPE
        "# TYPE a counter\n# TYPE a counter\na 1\n",  # dup TYPE
        "# TYPE a counter\na one\n",               # malformed value
        "# TYPE a wibble\na 1\n",                  # unknown kind
        "# TYPE a counter\n",                      # declared but empty
    ])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_exposition(text)

    def test_write_textfile_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "xfd.prom")
        write_textfile(path, "# TYPE a counter\na 1\n")
        write_textfile(path, "# TYPE a counter\na 2\n")
        assert open(path).read().endswith("a 2\n")
        assert os.listdir(tmp_path) == ["xfd.prom"]  # no tmp leftovers

    def test_promfile_sink_rewrites_on_triggers(self, tmp_path):
        path = str(tmp_path / "xfd.prom")
        telemetry = Telemetry()
        telemetry.metrics.inc("failure_points_injected", 5)
        sink = PromFileSink(path, telemetry)
        bus = LiveBus(
            [sink], run_id="r", ticker=False, heartbeat_interval=0.0
        )
        bus.emit("run_started", workload="w")
        writes_after_start = sink.writes
        bus.emit("point_completed", fid=0)   # not a trigger
        assert sink.writes == writes_after_start
        bus.heartbeat()
        assert sink.writes == writes_after_start + 1
        bus.emit("finding", bug_kind="PERFORMANCE")
        bus.emit("run_finished")
        bus.close()
        families = parse_exposition(open(path).read())
        assert families["xfd_failure_points_injected"]["samples"] \
            == [("xfd_failure_points_injected", "", 5.0)]
        progress = {
            name: info["samples"][0][2]
            for name, info in families.items()
            if name.startswith("xfd_run_")
        }
        assert progress["xfd_run_points_done"] == 1.0
        assert progress["xfd_run_findings"] == 1.0
        assert progress["xfd_run_finished"] == 1.0


class TestProgressRenderer:
    def _bus(self, renderer):
        return LiveBus(
            [renderer], run_id="r", clock=TickClock(step=2.0),
            heartbeat_interval=1.0, ticker=False,
        )

    def test_renders_on_tty_and_finishes_with_newline(self):
        stream = TtyStringIO()
        renderer = ProgressRenderer(
            stream=stream, min_interval=0.0, clock=TickClock()
        )
        assert renderer.enabled
        bus = self._bus(renderer)
        bus.emit("run_started", workload="hashmap_atomic")
        bus.emit("phase_started", phase="post_exec", points=2)
        bus.emit("point_completed", phase="post_exec", fid=0)
        bus.emit("finding", bug_kind="PERFORMANCE")
        bus.emit("run_finished")
        bus.close()
        out = stream.getvalue()
        assert renderer.heartbeats_rendered >= 1
        assert renderer.renders >= 3
        assert "hashmap_atomic" in out
        assert "post-failure" in out
        assert "1 finding(s)" in out
        assert "done" in out  # final render switches the phase label
        assert out.endswith("\n")
        assert "\r" in out

    def test_non_tty_stream_stays_silent(self):
        stream = io.StringIO()  # isatty() is False
        renderer = ProgressRenderer(stream=stream)
        assert not renderer.enabled
        bus = self._bus(renderer)
        bus.emit("run_started", workload="w")
        bus.emit("run_finished")
        bus.close()
        assert stream.getvalue() == ""

    def test_throttle_skips_fast_point_events(self):
        stream = TtyStringIO()
        # Clock step 1.0 < min_interval 10: only forced renders pass.
        renderer = ProgressRenderer(
            stream=stream, min_interval=10.0, clock=TickClock(step=1.0)
        )
        bus = LiveBus(
            [renderer], run_id="r", ticker=False,
            heartbeat_interval=0.0,
        )
        bus.emit("phase_started", phase="post_exec", points=50)
        forced = renderer.renders
        for fid in range(20):
            bus.emit("point_completed", fid=fid)
        assert renderer.renders <= forced + 2
        bus.close()


class TestSpanProfileExports:
    def _recorder(self):
        spans = SpanRecorder(clock=TickClock(step=0.0))
        clock = spans._clock
        with spans.span("run"):
            clock.now += 1.0
            with spans.span("post_run", fid=0):
                clock.now += 2.0
            with spans.span("post_run", fid=1):
                clock.now += 4.0
        return spans

    def test_folded_lines_are_path_self_micros(self):
        lines = self._recorder().folded()
        assert lines == [
            "run 1000000",
            "run;post_run 6000000",
        ]

    def test_aggregate_sorted_by_self_time(self):
        rows = self._recorder().aggregate()
        assert [row["name"] for row in rows] == ["post_run", "run"]
        post = rows[0]
        assert post["count"] == 2
        assert post["total_seconds"] == pytest.approx(6.0)
        assert post["self_seconds"] == pytest.approx(6.0)
        assert post["max_seconds"] == pytest.approx(4.0)
        run = rows[1]
        assert run["count"] == 1
        assert run["total_seconds"] == pytest.approx(7.0)
        assert run["self_seconds"] == pytest.approx(1.0)

    def test_graft_preserves_durations_and_tags_worker(self):
        worker = SpanRecorder(clock=TickClock(start=0.0, step=0.0))
        wclock = worker._clock
        with worker.span("post_run", fid=3):
            wclock.now += 2.5
        coordinator = SpanRecorder(
            clock=TickClock(start=100.0, step=0.0)
        )
        with coordinator.span("run"):
            grafted = coordinator.graft(
                worker.roots, worker="thread-1"
            )
        root = coordinator.roots[0]
        assert root.children == grafted
        child = root.children[0]
        assert child.duration == pytest.approx(2.5)
        assert child.attrs["worker"] == "thread-1"
        assert child.ended == pytest.approx(100.0)  # ends at graft time
