"""Unit tests for trace-level mechanism inference (repro.analysis.mech).

The six Table 1 mechanism workloads are the classification ground
truth: each clean build must land on its own mechanism kind with zero
invariant findings.  Rule mechanics that are awkward to reach through
a full workload (XF-M003's never-flushed checksummed range, the persist
tracker's flush/fence lifecycle) are driven by hand-built traces.
"""

import pytest

from repro.analysis.mech import (
    CHECKPOINTED,
    CHECKSUMMED,
    COLLAPSIBLE_KINDS,
    OPERATIONAL_LOGGED,
    REDO_JOURNALED,
    SHADOW_PAGED,
    UNDO_JOURNALED,
    UNPROTECTED,
    _PersistTracker,
    analyze_mechanisms_workload,
    infer_mechanisms,
)
from repro.mechanisms import MECHANISMS
from repro.mechanisms.base import MechanismWorkload
from repro.trace.events import EventKind, TraceEvent

EXPECTED_KIND = {
    "undo-logging": UNDO_JOURNALED,
    "redo-logging": REDO_JOURNALED,
    "checkpointing": CHECKPOINTED,
    "shadow-paging": SHADOW_PAGED,
    "operational-logging": OPERATIONAL_LOGGED,
    "checksum-recovery": CHECKSUMMED,
}


def _mech_report(store_cls, faults=(), test_size=4):
    workload = MechanismWorkload(
        store_cls, faults=faults, test_size=test_size
    )
    return analyze_mechanisms_workload(workload).mech


class TestCleanClassification:
    @pytest.mark.parametrize(
        "store_cls", MECHANISMS,
        ids=[cls.mechanism_name for cls in MECHANISMS],
    )
    def test_clean_build_classifies_as_its_mechanism(self, store_cls):
        mech = _mech_report(store_cls)
        kinds = {cv.kind for cv in mech.commit_vars}
        assert EXPECTED_KIND[store_cls.mechanism_name] in kinds

    @pytest.mark.parametrize(
        "store_cls", MECHANISMS,
        ids=[cls.mechanism_name for cls in MECHANISMS],
    )
    def test_clean_build_has_no_findings(self, store_cls):
        mech = _mech_report(store_cls)
        assert mech.violations == []

    def test_journal_mechanisms_emit_epochs(self):
        for store_cls in MECHANISMS:
            name = store_cls.mechanism_name
            if name == "checksum-recovery":
                continue  # validated by value: no epochs by design
            mech = _mech_report(store_cls)
            assert mech.epochs, name
            for epoch in mech.epochs:
                assert epoch.start <= epoch.commit <= epoch.end
                assert not epoch.violated

    def test_checksummed_never_collapsible(self):
        assert CHECKSUMMED not in COLLAPSIBLE_KINDS
        assert UNPROTECTED not in COLLAPSIBLE_KINDS

    def test_store_counts_attribute_mechanism_stores(self):
        mech = _mech_report(MECHANISMS[0])  # undo logging
        assert mech.store_counts.get(UNDO_JOURNALED, 0) > 0


class TestSyntheticTraces:
    """Hand-built traces exercising rule corners directly."""

    BASE = 0x10000

    def _events(self, specs):
        events = []
        for i, (kind, addr, size, info) in enumerate(specs):
            events.append(TraceEvent(
                seq=i, kind=kind, addr=addr, size=size, info=info
            ))
        return events

    def test_unflushed_checksummed_range_raises_m003(self):
        base = self.BASE
        events = self._events([
            (EventKind.COMMIT_VAR, base, 40, "ck"),
            (EventKind.COMMIT_RANGE, base, 40, "ck"),
            (EventKind.STORE, base, 8, ""),
        ])
        mech = infer_mechanisms(events)
        (cv,) = mech.commit_vars
        assert cv.kind == CHECKSUMMED
        assert [v.rule for v in mech.violations] == ["XF-M003"]

    def test_flushed_checksummed_range_is_clean(self):
        base = self.BASE
        events = self._events([
            (EventKind.COMMIT_VAR, base, 40, "ck"),
            (EventKind.COMMIT_RANGE, base, 40, "ck"),
            (EventKind.STORE, base, 8, ""),
            (EventKind.FLUSH, base, 64, "CLWB"),
            (EventKind.FENCE, 0, 0, "SFENCE"),
        ])
        mech = infer_mechanisms(events)
        (cv,) = mech.commit_vars
        assert cv.kind == CHECKSUMMED
        assert mech.violations == []

    def test_small_self_covering_var_is_shadow_paged(self):
        base = self.BASE
        events = self._events([
            (EventKind.COMMIT_VAR, base, 8, "ptr"),
            (EventKind.COMMIT_RANGE, base, 8, "ptr"),
            (EventKind.STORE, base, 8, ""),
            (EventKind.FLUSH, base, 64, "CLWB"),
            (EventKind.FENCE, 0, 0, "SFENCE"),
            (EventKind.STORE, base, 8, ""),
            (EventKind.FLUSH, base, 64, "CLWB"),
            (EventKind.FENCE, 0, 0, "SFENCE"),
        ])
        mech = infer_mechanisms(events)
        (cv,) = mech.commit_vars
        assert cv.kind == SHADOW_PAGED
        # One epoch per swap, committed at the swap itself.
        assert len(mech.epochs) == 2
        assert all(e.commit == e.end for e in mech.epochs)

    def test_tx_store_without_tx_add_raises_m001(self):
        base = self.BASE
        events = self._events([
            (EventKind.TX_BEGIN, 0, 0, "1"),
            (EventKind.TX_ADD, base, 64, "1"),
            (EventKind.STORE, base, 8, ""),  # journaled: fine
            (EventKind.STORE, base + 256, 8, ""),  # bypasses the log
            (EventKind.TX_COMMIT, 0, 0, "1"),
        ])
        mech = infer_mechanisms(events)
        assert [v.rule for v in mech.violations] == ["XF-M001"]
        (epoch,) = mech.epochs
        assert epoch.kind == UNDO_JOURNALED
        assert epoch.violated

    def test_tx_store_to_fresh_alloc_is_clean(self):
        base = self.BASE
        events = self._events([
            (EventKind.TX_BEGIN, 0, 0, "1"),
            (EventKind.ALLOC, base, 128, "zeroed"),
            (EventKind.STORE, base, 8, ""),
            (EventKind.TX_COMMIT, 0, 0, "1"),
        ])
        mech = infer_mechanisms(events)
        assert mech.violations == []
        (epoch,) = mech.epochs
        assert not epoch.violated

    def test_setup_region_is_excluded(self):
        base = self.BASE
        events = self._events([
            (EventKind.SKIP_DET_BEGIN, 0, 0, ""),
            (EventKind.COMMIT_VAR, base, 40, "ck"),
            (EventKind.COMMIT_RANGE, base, 40, "ck"),
            (EventKind.STORE, base, 8, ""),
            (EventKind.SKIP_DET_END, 0, 0, ""),
        ])
        mech = infer_mechanisms(events)
        assert mech.commit_vars == []
        assert mech.stores_seen == 0
        assert mech.violations == []


class TestPersistTracker:
    def _store(self, seq, addr, size, nt=False):
        kind = EventKind.NT_STORE if nt else EventKind.STORE
        return TraceEvent(seq=seq, kind=kind, addr=addr, size=size)

    def test_clwb_needs_a_fence_to_persist(self):
        tracker = _PersistTracker()
        tracker.store(self._store(0, 0x1000, 8), nt=False)
        tracker.flush(TraceEvent(
            seq=1, kind=EventKind.FLUSH, addr=0x1000, size=64,
            info="CLWB",
        ))
        assert tracker.unpersisted_in(0x1000, 0x1008)
        tracker.fence()
        assert not tracker.unpersisted_in(0x1000, 0x1008)

    def test_clflush_persists_immediately(self):
        tracker = _PersistTracker()
        tracker.store(self._store(0, 0x1000, 8), nt=False)
        tracker.flush(TraceEvent(
            seq=1, kind=EventKind.FLUSH, addr=0x1000, size=64,
            info="CLFLUSH",
        ))
        assert not tracker.unpersisted_in(0x1000, 0x1008)

    def test_nt_store_drains_on_fence(self):
        tracker = _PersistTracker()
        tracker.store(self._store(0, 0x1000, 8), nt=True)
        assert tracker.unpersisted_in(0x1000, 0x1008)
        tracker.fence()
        assert not tracker.unpersisted_in(0x1000, 0x1008)

    def test_unflushed_store_survives_fences(self):
        tracker = _PersistTracker()
        tracker.store(self._store(0, 0x1000, 8), nt=False)
        tracker.fence()
        assert tracker.unpersisted_in(0x1000, 0x1008)
