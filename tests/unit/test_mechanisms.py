"""Functional unit tests for the Table 1 mechanism stores (correct
builds, no failure injection): each mechanism must actually implement
its recovery semantics, independent of the detector."""

import pytest

from repro.mechanisms import MECHANISMS
from repro.mechanisms.checkpoint import CheckpointStore
from repro.mechanisms.checksum import ChecksumStore, _checksum
from repro.mechanisms.operational_log import OperationalLogStore
from repro.mechanisms.redo_log import RedoLogStore
from repro.mechanisms.shadow_paging import ShadowPagingStore
from repro.mechanisms.undo_log import UndoLogStore
from repro.pm.memory import PersistentMemory
from repro.trace.recorder import TraceRecorder


def fresh_memory():
    return PersistentMemory(TraceRecorder(), capture_ips=False)


class TestInventory:
    def test_six_mechanisms_in_paper_order(self):
        names = [cls.mechanism_name for cls in MECHANISMS]
        assert names == [
            "undo-logging",
            "redo-logging",
            "checkpointing",
            "shadow-paging",
            "operational-logging",
            "checksum-recovery",
        ]

    def test_every_mechanism_documents_rule_and_faults(self):
        for cls in MECHANISMS:
            assert cls.consistency_rule
            assert cls.FAULTS
            for flag, (code, description) in cls.FAULTS.items():
                assert code in ("R", "S")
                assert description


class TestUndoLog:
    def test_updates_apply(self):
        store = UndoLogStore.create(fresh_memory())
        store.update(0)
        assert store.read_all()[0] == 1000

    def test_recover_rolls_back_valid_backup(self):
        store = UndoLogStore.create(fresh_memory())
        root = store.pool.root
        root.backup_idx = 1
        root.backup_val = 101
        root.data[1] = 777  # torn update
        root.valid = 1
        store.recover()
        assert store.read_all()[1] == 101
        assert root.valid == 0

    def test_recover_ignores_retired_backup(self):
        store = UndoLogStore.create(fresh_memory())
        store.update(1)
        store.recover()  # valid == 0: nothing happens
        assert store.read_all()[1] == 1001


class TestRedoLog:
    def test_recover_replays_committed_entry(self):
        store = RedoLogStore.create(fresh_memory())
        root = store.pool.root
        root.redo_idx = 2
        root.redo_val = 999
        root.committed = 1
        root.data[2] = -1  # torn in-place apply
        store.recover()
        assert store.read_all()[2] == 999
        assert root.committed == 0

    def test_recover_discards_uncommitted_entry(self):
        store = RedoLogStore.create(fresh_memory())
        root = store.pool.root
        original = store.read_all()[2]
        root.redo_idx = 2
        root.redo_val = 999  # written but never committed
        store.recover()
        assert store.read_all()[2] == original


class TestCheckpoint:
    def test_update_flips_active_snapshot(self):
        store = CheckpointStore.create(fresh_memory())
        assert store.pool.root.active == 0
        store.update(0)
        assert store.pool.root.active == 1
        values = store.read_all()
        assert values[0] == 310  # 300 + 10

    def test_inactive_snapshot_keeps_previous_state(self):
        store = CheckpointStore.create(fresh_memory())
        before = store.read_all()
        store.update(0)
        old = store._snapshot(1 - store.pool.root.active)
        assert [old[i] for i in range(len(before))] == before


class TestShadowPaging:
    def test_update_replaces_record_atomically(self):
        store = ShadowPagingStore.create(fresh_memory())
        first = store.read_all()
        store.update(0)
        second = store.read_all()
        assert second[0] == first[0] + 1  # version bumped
        assert second[1] == first[1] + 10

    def test_old_record_is_freed(self):
        store = ShadowPagingStore.create(fresh_memory())
        old_address = store.pool.root.record_ptr
        store.update(0)
        assert store.pool.root.record_ptr != old_address
        assert store.pool.allocator.free_list()


class TestOperationalLog:
    def test_recover_reexecutes_logged_operation(self):
        store = OperationalLogStore.create(fresh_memory())
        root = store.pool.root
        root.op_code = 1
        root.op_slot = 3
        root.op_operand = 12345
        root.op_valid = 1
        root.data[3] = -1  # torn apply
        store.recover()
        assert store.read_all()[3] == 12345
        assert root.op_valid == 0

    def test_update_then_recover_is_idempotent(self):
        store = OperationalLogStore.create(fresh_memory())
        store.update(0)
        value = store.read_all()[0]
        store.recover()  # nothing valid: no change
        assert store.read_all()[0] == value


class TestChecksum:
    def test_valid_checksum_accepted(self):
        store = ChecksumStore.create(fresh_memory())
        store.recover()
        assert store._value == store.read_all()

    def test_corrupt_payload_falls_back_to_replica(self):
        store = ChecksumStore.create(fresh_memory())
        root = store.pool.root
        good = [root.good_payload[i] for i in range(4)]
        root.payload[0] = 0xBAD  # torn write, checksum now wrong
        store.recover()
        assert store._value == good
        assert store.read_all() == good  # primary repaired

    def test_checksum_function_sensitivity(self):
        assert _checksum([1, 2, 3]) != _checksum([1, 2, 4])
        assert _checksum([]) == _checksum([])


class TestMechanismWorkloadWrapper:
    def test_unknown_fault_rejected(self):
        from repro.mechanisms import MechanismWorkload

        with pytest.raises(ValueError):
            MechanismWorkload(UndoLogStore, faults={"nope"})

    def test_wrapper_name_and_faults(self):
        from repro.mechanisms import MechanismWorkload

        workload = MechanismWorkload(RedoLogStore)
        assert workload.name == "mech-redo-logging"
        assert workload.FAULTS is RedoLogStore.FAULTS
