"""Tests for object pools: creation, validation, root objects."""

import pytest

from repro.errors import (
    PoolCorruptionError,
    PoolLayoutError,
)
from repro.pmdk import I64, ObjectPool, Struct, U64
from repro.pmdk.pmemobj.pool import POOL_MAGIC, PoolHeader
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.trace.recorder import TraceRecorder


class DemoRoot(Struct):
    value = I64()
    counter = U64()


def fresh_memory():
    return PersistentMemory(TraceRecorder(), capture_ips=False)


class TestCreateOpen:
    def test_create_then_open(self, memory):
        pool = ObjectPool.create(memory, "p", "layout-x", root_cls=DemoRoot)
        pool.root.value = 42
        pool.persist(pool.root.address, DemoRoot.SIZE)
        reopened = ObjectPool.open(memory, "p", "layout-x", DemoRoot)
        assert reopened.root.value == 42

    def test_header_fields(self, memory):
        pool = ObjectPool.create(memory, "p", "layout-x", root_cls=DemoRoot)
        header = pool.header
        assert header.magic == POOL_MAGIC
        assert header.layout_name.rstrip(b"\x00") == b"layout-x"
        assert header.root_offset != 0
        assert header.heap_size > 0

    def test_layout_mismatch(self, memory):
        ObjectPool.create(memory, "p", "layout-x", root_cls=DemoRoot)
        with pytest.raises(PoolLayoutError):
            ObjectPool.open(memory, "p", "other-layout", DemoRoot)

    def test_layout_name_too_long(self, memory):
        with pytest.raises(PoolLayoutError):
            ObjectPool.create(memory, "p", "x" * 64, root_cls=DemoRoot)

    def test_open_unmapped_pool(self, memory):
        with pytest.raises(KeyError):
            ObjectPool.open(memory, "nope", "layout-x", DemoRoot)

    def test_corrupt_magic_rejected(self, memory):
        pool = ObjectPool.create(memory, "p", "layout-x", root_cls=DemoRoot)
        memory.store(pool.base, b"\x00" * 8)  # stomp the magic
        with pytest.raises(PoolCorruptionError):
            ObjectPool.open(memory, "p", "layout-x", DemoRoot)

    def test_corrupt_checksum_rejected(self, memory):
        pool = ObjectPool.create(memory, "p", "layout-x", root_cls=DemoRoot)
        # Stomp a metadata field without refreshing the checksum.
        memory.store(
            pool.base + PoolHeader.offset_of("uuid_lo"), b"\xff" * 8
        )
        with pytest.raises(PoolCorruptionError):
            ObjectPool.open(memory, "p", "layout-x", DemoRoot)

    def test_incomplete_creation_fails_open(self):
        """Bug 4's core: a half-created pool does not validate."""
        memory = fresh_memory()
        pmpool = memory.map_pool(PMPool("p", size=1 << 20))
        header = PoolHeader(memory, pmpool.base)
        header.magic = POOL_MAGIC  # ...and nothing else
        with pytest.raises(PoolCorruptionError):
            ObjectPool.open(memory, "p", "layout-x", DemoRoot)

    def test_two_pools_get_disjoint_bases(self, memory):
        a = ObjectPool.create(memory, "a", "layout-x", root_cls=DemoRoot)
        b = ObjectPool.create(memory, "b", "layout-x", root_cls=DemoRoot)
        assert a.base != b.base
        assert not (
            a.base < b.pmpool.end and b.base < a.pmpool.end
        )

    def test_root_without_root_cls(self, memory):
        pool = ObjectPool.create(memory, "p", "layout-x")
        with pytest.raises(PoolLayoutError):
            _ = pool.root


class TestAllocApi:
    def test_alloc_struct_returns_view(self, memory):
        pool = ObjectPool.create(memory, "p", "l", root_cls=DemoRoot)
        obj = pool.alloc(DemoRoot)
        assert isinstance(obj, DemoRoot)
        obj.value = 5
        assert obj.value == 5

    def test_alloc_raw_returns_address(self, memory):
        pool = ObjectPool.create(memory, "p", "l", root_cls=DemoRoot)
        address = pool.alloc(128)
        assert isinstance(address, int)
        assert memory.load(address, 128) == bytes(128)

    def test_free_accepts_struct_or_address(self, memory):
        pool = ObjectPool.create(memory, "p", "l", root_cls=DemoRoot)
        obj = pool.alloc(DemoRoot)
        pool.free(obj)
        address = pool.alloc(64)
        pool.free(address)
