"""Unit tests for the repro.obs telemetry subsystem."""

import json

import pytest

from repro.obs import (
    AuditLog,
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    default_registry,
    read_ndjson,
    resolve_telemetry,
    set_default_registry,
    to_ndjson,
    write_ndjson,
)
from repro.obs.metrics import DEFAULT_BUCKETS


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.value("c") == 5
        assert registry.counter("c") is registry.counter("c")

    def test_gauge_and_convenience(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 7)
        registry.inc("c", 2)
        registry.observe("t", 0.5)
        assert registry.value("g") == 7
        assert registry.value("c") == 2
        assert registry.timer("t").total == 0.5

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_timer_accumulates(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.observe(0.25)
        timer.observe(0.75)
        snap = timer.snapshot()
        assert snap["count"] == 2
        assert snap["total"] == 1.0
        assert snap["min"] == 0.25
        assert snap["max"] == 0.75

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        ticks = iter([1.0, 3.5])
        with registry.timer("t").time(clock=lambda: next(ticks)):
            pass
        assert registry.timer("t").total == 2.5

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(10, 100))
        for value in (1, 10, 11, 5000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["buckets"] == {"le_10": 2, "le_100": 1}
        assert snap["overflow"] == 1
        assert snap["count"] == 4

    def test_default_buckets_are_decades(self):
        assert DEFAULT_BUCKETS[0] == 10
        assert DEFAULT_BUCKETS[-1] == 1_000_000

    def test_to_records_and_format(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 3)
        records = list(registry.to_records())
        assert [r["name"] for r in records] == ["a", "b"]
        assert all(r["type"] == "metric" for r in records)
        text = registry.format()
        assert "a" in text and "3" in text

    def test_default_registry_swap(self):
        original = default_registry()
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert previous is original
            assert default_registry() is fresh
        finally:
            set_default_registry(previous)


class TestSpans:
    def make(self):
        ticks = iter(range(100))
        return SpanRecorder(clock=lambda: next(ticks))

    def test_nesting(self):
        spans = self.make()
        with spans.span("outer"):
            with spans.span("inner", fid=3):
                pass
        (outer,) = spans.roots
        assert outer.name == "outer"
        (inner,) = outer.children
        assert inner.attrs == {"fid": 3}
        assert outer.duration == 3  # ticks 0..3
        assert inner.duration == 1
        assert outer.self_seconds == 2

    def test_find_and_first(self):
        spans = self.make()
        with spans.span("run"):
            with spans.span("post_run", fid=0):
                pass
            with spans.span("post_run", fid=1):
                pass
        assert len(spans.find("post_run")) == 2
        assert spans.first("post_run").attrs["fid"] == 0
        assert spans.first("missing") is None

    def test_coverage(self):
        spans = self.make()
        with spans.span("root"):       # 0..5
            with spans.span("leaf1"):  # 1..2
                pass
            with spans.span("leaf2"):  # 3..4
                pass
        assert spans.total_seconds() == 5
        assert spans.leaf_seconds() == 2
        assert spans.coverage() == pytest.approx(0.4)

    def test_records_link_parents(self):
        spans = self.make()
        with spans.span("a"):
            with spans.span("b"):
                pass
        a_rec, b_rec = list(spans.to_records())
        assert a_rec["parent"] == 0
        assert b_rec["parent"] == a_rec["id"]

    def test_format_indents(self):
        spans = self.make()
        with spans.span("a"):
            with spans.span("b", fid=1):
                pass
        text = spans.format()
        assert text.splitlines()[1].startswith("  b fid=1:")


class TestAudit:
    def make(self):
        ticks = iter(range(100))
        return AuditLog(clock=lambda: next(ticks))

    def test_record_and_query(self):
        log = self.make()
        scope = log.scoped(stage="pre")
        scope.record("STORE", "persistence", 0x100, 8,
                     "UNMODIFIED", "MODIFIED", 0, ip="a.py:1")
        scope.record("FLUSH", "persistence", 0x100, 8,
                     "MODIFIED", "WRITEBACK_PENDING", 0, ip="a.py:2")
        assert len(log) == 2
        assert [r.op for r in log.for_range(0x100, 8)] == \
            ["STORE", "FLUSH"]
        assert log.for_range(0x200) == []
        assert log.last_writer(0x100, 8) == "a.py:1"

    def test_fork_scoping(self):
        log = self.make()
        pre = log.scoped(stage="pre")
        pre.record("STORE", "persistence", 0x100, 8,
                   "UNMODIFIED", "MODIFIED", 0, ip="setup.py:1")
        log.mark_fork(0)
        post0 = log.scoped(stage="post", failure_point=0)
        post0.record("STORE", "persistence", 0x100, 8,
                     "MODIFIED", "MODIFIED", 1, ip="recover.py:9")
        # A later pre-failure store must not appear in fid 0's history.
        pre.record("STORE", "persistence", 0x100, 8,
                   "MODIFIED", "MODIFIED", 2, ip="later.py:5")
        history = log.history_for(0x100, 8, failure_point=0)
        assert [r.ip for r in history] == \
            ["setup.py:1", "recover.py:9"]
        assert log.last_writer(0x100, 8, failure_point=0) == \
            "recover.py:9"
        # Unscoped history sees everything.
        assert len(log.history_for(0x100, 8)) == 3

    def test_records_stringify_states(self):
        import enum

        class State(enum.Enum):
            A = 1
            B = 2

        log = self.make()
        log.record("STORE", "persistence", 0, 4, State.A, State.B, 0)
        record = next(iter(log.to_records()))
        assert record["old"] == "A"
        assert record["new"] == "B"
        json.dumps(record)  # must be serializable


class TestTelemetry:
    def test_audit_off_by_default(self):
        telemetry = Telemetry()
        assert telemetry.audit is None
        assert not telemetry.audit_enabled
        assert "audit" not in telemetry.to_dict()

    def test_audit_opt_in(self):
        telemetry = Telemetry(audit=True)
        assert isinstance(telemetry.audit, AuditLog)
        assert "audit" in telemetry.to_dict()

    def test_resolve_from_config(self):
        class Config:
            audit = True
            telemetry = None

        resolved = resolve_telemetry(Config())
        assert resolved.audit_enabled
        injected = Telemetry()
        Config.telemetry = injected
        assert resolve_telemetry(Config()) is injected

    def test_format_empty(self):
        assert Telemetry().format() == "(no telemetry)"


class TestExport:
    def test_ndjson_round_trip(self, tmp_path):
        records = [{"type": "span", "name": "x"},
                   {"type": "metric", "value": 3}]
        path = tmp_path / "out.ndjson"
        assert write_ndjson(path, iter(records)) == 2
        assert read_ndjson(path) == records

    def test_to_ndjson_one_object_per_line(self):
        text = to_ndjson([{"a": 1}, {"b": 2}])
        lines = text.strip().splitlines()
        assert [json.loads(line) for line in lines] == \
            [{"a": 1}, {"b": 2}]
