"""Tests for the low-level pmem API, source-location capture, and the
error hierarchy."""

import pytest

from repro._location import (
    UNKNOWN_LOCATION,
    SourceLocation,
    capture_library_location,
    capture_location,
)
from repro.errors import (
    AbortedTransactionError,
    DetectorError,
    FailureInjected,
    PMAddressError,
    PMError,
    PoolCorruptionError,
    PoolError,
    PostFailureCrash,
    ReproError,
    TransactionError,
)
from repro.pm.cacheline import LineState
from repro.pmdk import pmem


class TestPmemApi:
    def test_persist_is_flush_plus_fence(self, memory, pool):
        memory.store(pool.base, b"x")
        pmem.persist(memory, pool.base, 1)
        assert memory.is_persisted(pool.base, 1)

    def test_flush_alone_leaves_pending(self, memory, pool):
        memory.store(pool.base, b"x")
        pmem.flush(memory, pool.base, 1)
        assert (
            memory.cache.state_of(pool.base)
            is LineState.WRITEBACK_PENDING
        )
        pmem.drain(memory)
        assert memory.is_persisted(pool.base, 1)

    def test_sfence_completes_pending(self, memory, pool):
        memory.store(pool.base, b"x")
        pmem.flush(memory, pool.base, 1)
        pmem.sfence(memory)
        assert memory.is_persisted(pool.base, 1)

    def test_memcpy_persist(self, memory, pool):
        pmem.memcpy_persist(memory, pool.base, b"hello")
        assert memory.load(pool.base, 5) == b"hello"
        assert memory.is_persisted(pool.base, 5)

    def test_memcpy_nodrain_needs_drain(self, memory, pool):
        pmem.memcpy_nodrain(memory, pool.base, b"nt-data")
        assert memory.load(pool.base, 7) == b"nt-data"
        assert not memory.is_persisted(pool.base, 7)
        pmem.drain(memory)
        assert memory.is_persisted(pool.base, 7)

    def test_memset_persist(self, memory, pool):
        pmem.memset_persist(memory, pool.base, 0xAB, 16)
        assert memory.load(pool.base, 16) == b"\xab" * 16
        assert memory.is_persisted(pool.base, 16)


class TestLocationCapture:
    def test_capture_skips_runtime_frames(self, memory, pool):
        memory.store(pool.base, b"x")  # store through the runtime
        event = memory.recorder.events[-1]
        assert event.ip.basename == "test_pmem_api.py"
        assert event.ip.function == "test_capture_skips_runtime_frames"

    def test_capture_location_direct(self):
        location = capture_location(skip=1)
        assert location.basename == "test_pmem_api.py"

    def test_capture_library_location(self):
        location = capture_library_location(skip=1)
        assert location.function == "test_capture_library_location"

    def test_source_location_str(self):
        location = SourceLocation("/a/b/c.py", 10, "fn")
        assert str(location) == "c.py:10 (fn)"
        assert location.basename == "c.py"

    def test_unknown_location_singleton(self):
        assert UNKNOWN_LOCATION.lineno == 0
        assert "<unknown>" in str(UNKNOWN_LOCATION)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_cls in (
            PMError, PMAddressError, PoolError, PoolCorruptionError,
            TransactionError, AbortedTransactionError, DetectorError,
            FailureInjected, PostFailureCrash,
        ):
            assert issubclass(exc_cls, ReproError)

    def test_pm_address_error_message(self):
        error = PMAddressError(0x1000, 8, "nope")
        assert "0x1000" in str(error)
        assert "nope" in str(error)
        assert error.address == 0x1000

    def test_failure_injected_carries_id(self):
        error = FailureInjected(7)
        assert error.failure_point_id == 7

    def test_post_failure_crash_wraps_original(self):
        original = ValueError("inner")
        error = PostFailureCrash(3, original)
        assert error.original is original
        assert "inner" in str(error)
        assert "#3" in str(error)

    def test_catching_base_covers_library_errors(self, memory):
        with pytest.raises(ReproError):
            memory.load(0xDEAD0000, 8)


class TestReportJson:
    def test_to_json_roundtrips(self):
        import json

        from repro.core import DetectorConfig, XFDetector
        from repro.workloads import LinkedListWorkload

        report = XFDetector(DetectorConfig()).run(
            LinkedListWorkload(
                recovery="naive", init_size=1, test_size=1,
                faults={"unlogged_length"},
            )
        )
        payload = json.loads(report.to_json())
        assert payload["workload"] == "linkedlist"
        assert payload["stats"]["failure_points"] > 0
        assert payload["bugs"]
        bug = payload["bugs"][0]
        assert bug["kind"] == "cross-failure race"
        assert "pop" in bug["reader"]
        assert "append" in bug["writer"]
