"""Tests for PMPool and the PersistentMemory runtime."""

import pytest

from repro.errors import PMAddressError
from repro.pm.cacheline import FenceKind, FlushKind, LineState
from repro.pm.constants import PMEM_MMAP_HINT
from repro.pm.image import CrashImageMode
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder


BASE = PMEM_MMAP_HINT


class TestPMPool:
    def test_new_pool_is_zeroed(self):
        pool = PMPool("p", size=4096)
        assert pool.read(BASE, 16) == bytes(16)

    def test_read_write_roundtrip(self):
        pool = PMPool("p", size=4096)
        pool.write(BASE + 100, b"hello")
        assert pool.read(BASE + 100, 5) == b"hello"

    def test_out_of_bounds_rejected(self):
        pool = PMPool("p", size=4096)
        with pytest.raises(PMAddressError):
            pool.read(BASE + 4096, 1)
        with pytest.raises(PMAddressError):
            pool.write(BASE - 1, b"x")
        with pytest.raises(PMAddressError):
            pool.read(BASE + 4090, 10)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            PMPool("p", size=0)
        with pytest.raises(ValueError):
            PMPool("p", size=16, data=b"short")

    def test_clone_is_independent(self):
        pool = PMPool("p", size=4096)
        pool.write(BASE, b"abc")
        dup = pool.clone()
        dup.write(BASE, b"xyz")
        assert pool.read(BASE, 3) == b"abc"
        assert dup.read(BASE, 3) == b"xyz"

    def test_load_bytes_validates_length(self):
        pool = PMPool("p", size=16)
        with pytest.raises(ValueError):
            pool.load_bytes(b"too short")


class TestMemoryMapping:
    def test_overlapping_pools_rejected(self, memory, pool):
        with pytest.raises(PMAddressError):
            memory.map_pool(PMPool("other", size=4096, base=pool.base))

    def test_pool_lookup(self, memory, pool):
        assert memory.pool_at(pool.base) is pool
        assert memory.pool_named("test") is pool
        with pytest.raises(KeyError):
            memory.pool_named("missing")
        with pytest.raises(PMAddressError):
            memory.pool_at(pool.end + 10)


class TestTracedOperations:
    def test_store_traces_and_updates_state(self, memory, pool):
        memory.store(pool.base, b"\x01\x02")
        assert pool.read(pool.base, 2) == b"\x01\x02"
        assert memory.cache.state_of(pool.base) is LineState.MODIFIED
        events = memory.recorder.events
        assert events[-1].kind is EventKind.STORE
        assert events[-1].addr == pool.base
        assert events[-1].size == 2

    def test_load_traces(self, memory, pool):
        memory.store(pool.base, b"zz")
        data = memory.load(pool.base, 2)
        assert data == b"zz"
        assert memory.recorder.events[-1].kind is EventKind.LOAD

    def test_flush_emits_one_event_per_line(self, memory, pool):
        memory.store(pool.base, bytes(130))
        memory.flush(pool.base, 130)
        flushes = [
            e for e in memory.recorder.events
            if e.kind is EventKind.FLUSH
        ]
        assert len(flushes) == 3  # 130 bytes -> 3 cache lines

    def test_fence_returns_ordering_point_flag(self, memory, pool):
        assert memory.fence() is False
        memory.store(pool.base, b"x")
        memory.flush(pool.base, 1)
        assert memory.fence() is True
        assert memory.fence() is False

    def test_is_persisted(self, memory, pool):
        memory.store(pool.base, b"abc")
        assert not memory.is_persisted(pool.base, 3)
        memory.flush(pool.base, 3)
        assert not memory.is_persisted(pool.base, 3)
        memory.fence()
        assert memory.is_persisted(pool.base, 3)

    def test_nt_store_persists_on_drain(self, memory, pool):
        memory.nt_store(pool.base, b"nt")
        assert not memory.is_persisted(pool.base, 2)
        memory.fence(FenceKind.DRAIN)
        assert memory.is_persisted(pool.base, 2)

    def test_clflush_notifies_ordering_listener(self, memory, pool):
        seen = []

        class Listener:
            def before_ordering_point(self, mem, reason, force=False):
                seen.append(reason)

        memory.add_ordering_listener(Listener())
        memory.store(pool.base, b"x")
        memory.flush(pool.base, 1, FlushKind.CLFLUSH)
        assert any("CLFLUSH" in reason for reason in seen)

    def test_fence_notifies_listener_before_effect(self, memory, pool):
        states = []

        class Listener:
            def before_ordering_point(self, mem, reason, force=False):
                states.append(mem.is_persisted(pool.base, 1))

        memory.add_ordering_listener(Listener())
        memory.store(pool.base, b"x")
        memory.flush(pool.base, 1)
        memory.fence()
        # The listener observed the pre-fence (non-persisted) state:
        # failure points snapshot PM *before* the ordering point.
        assert states == [False]

    def test_observers_see_all_events(self, memory, pool):
        seen = []

        class Observer:
            def on_event(self, event):
                seen.append(event.kind)

        memory.add_observer(Observer())
        memory.store(pool.base, b"x")
        memory.load(pool.base, 1)
        assert seen == [EventKind.STORE, EventKind.LOAD]

    def test_bad_access_sizes_rejected(self, memory, pool):
        with pytest.raises(PMAddressError):
            memory.load(pool.base, 0)
        with pytest.raises(PMAddressError):
            memory.store(pool.base, b"")


class TestLibraryRegions:
    def test_library_region_markers_and_depths(self, memory, pool):
        with memory.library_region("fn"):
            assert memory.skip_failure_depth == 1
            assert memory.skip_detection_depth == 1
            memory.store(pool.base, b"x")
        assert memory.skip_failure_depth == 0
        kinds = [e.kind for e in memory.recorder.events]
        assert kinds == [
            EventKind.LIB_BEGIN, EventKind.STORE, EventKind.LIB_END,
        ]

    def test_library_region_restores_depth_on_exception(self, memory):
        with pytest.raises(RuntimeError):
            with memory.library_region("fn"):
                raise RuntimeError("boom")
        assert memory.skip_failure_depth == 0
        assert memory.skip_detection_depth == 0


class TestSnapshots:
    def test_snapshot_images_both_modes(self, memory, pool):
        # Persist "AA", then overwrite with "BB" without flushing.
        memory.store(pool.base, b"AA")
        memory.flush(pool.base, 2)
        memory.fence()
        memory.store(pool.base, b"BB")
        image = memory.snapshot_images()[0]
        as_written = image.bytes_for(CrashImageMode.AS_WRITTEN)
        strict = image.bytes_for(CrashImageMode.PERSISTED_ONLY)
        assert as_written[:2] == b"BB"
        assert strict[:2] == b"AA"

    def test_capture_ips_disabled(self, pool):
        memory = PersistentMemory(TraceRecorder(), capture_ips=False)
        memory.map_pool(PMPool("p2", size=4096, base=pool.end + 4096))
        memory.store(pool.end + 4096, b"x")
        from repro._location import UNKNOWN_LOCATION

        assert memory.recorder.events[-1].ip is UNKNOWN_LOCATION
