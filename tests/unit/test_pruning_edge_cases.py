"""Conservatism edge cases for static failure-point pruning.

``pruning.py`` documents four conservatism rules; these tests pin the
ones that only bite in corners — forced failure points, PM operations
from uncovered lines, analysis-budget exhaustion — plus the
composition of a ``PrunePlan`` with a mechanism ``CrashPlanSet``
(``static_prune`` + ``plan_mode``): the two must not double-skip.
"""

import pytest

from repro.analysis.pruning import PrunePlan, build_prune_plan
from repro.core import DetectorConfig, XFDetector
from repro.core.injector import FailureInjector
from repro.pmdk import pmem
from repro.workloads import ALL_WORKLOADS


def _wire(memory, prune_plan=None, config=None):
    injector = FailureInjector(
        config or DetectorConfig(), prune_plan=prune_plan
    )
    memory.add_ordering_listener(injector)
    memory.add_observer(injector)
    memory.roi_active = True
    return injector


def _certify_everything(memory):
    """A plan certifying every line this test file executes."""

    class _Everything(frozenset):
        def __contains__(self, _item):
            return True

    plan = PrunePlan(())
    plan.certified = _Everything()
    return plan


class TestForcedPointsNeverPruned:
    def test_forced_point_survives_a_certifying_plan(self, memory,
                                                     pool):
        injector = _wire(memory, prune_plan=_certify_everything(memory))
        pmem.memcpy_persist(memory, pool.base, b"a")  # first point
        assert len(injector.failure_points) == 1
        # Certified interval: an unforced ordering point is pruned...
        pmem.memcpy_persist(memory, pool.base + 64, b"b")
        assert len(injector.failure_points) == 1
        assert injector.pruned_static == 1
        # ...but a forced one must always fire.
        memory.store(pool.base + 128, b"c")
        injector.before_ordering_point(memory, "forced", force=True)
        assert len(injector.failure_points) == 2
        assert injector.failure_points[-1].reason == "forced"

    def test_first_point_of_a_run_never_pruned(self, memory, pool):
        injector = _wire(memory, prune_plan=_certify_everything(memory))
        pmem.memcpy_persist(memory, pool.base, b"a")
        assert len(injector.failure_points) == 1
        assert injector.pruned_static == 0


class TestUncoveredLineVeto:
    def test_uncertified_line_vetoes_the_interval(self, memory, pool):
        # An empty certified set: every PM operation comes from an
        # uncovered line, so nothing may be pruned.
        injector = _wire(memory, prune_plan=PrunePlan(()))
        pmem.memcpy_persist(memory, pool.base, b"a")
        pmem.memcpy_persist(memory, pool.base + 64, b"b")
        assert len(injector.failure_points) == 2
        assert injector.pruned_static == 0

    def test_veto_accumulates_across_pruned_points(self, memory, pool):
        # One uncertified op taints the interval until a point fires.
        plan = _certify_everything(memory)
        injector = _wire(memory, prune_plan=plan)
        pmem.memcpy_persist(memory, pool.base, b"a")
        injector._uncertified_pending = True  # simulated taint
        pmem.memcpy_persist(memory, pool.base + 64, b"b")
        assert len(injector.failure_points) == 2
        assert injector.pruned_static == 0


class TestBudgetExhaustion:
    def test_exhausted_analysis_produces_no_plan(self):
        workload = ALL_WORKLOADS["btree"](init_size=2, test_size=3)
        plan = build_prune_plan(workload, max_steps=50)
        assert plan is None

    def test_flagged_workload_produces_no_plan(self):
        workload = ALL_WORKLOADS["hashmap_tx"](
            faults={"unpersisted_create_seed"},
            init_size=2, test_size=3,
        )
        assert build_prune_plan(workload) is None

    def test_complete_clean_analysis_produces_a_plan(self):
        workload = ALL_WORKLOADS["btree"](init_size=2, test_size=3)
        plan = build_prune_plan(workload)
        assert plan is not None
        assert len(plan) > 0


class TestPruneAndPlanCompose:
    """static_prune=True + plan_mode='mechanism' stack safely."""

    @pytest.mark.parametrize("workload", ["btree", "ctree"])
    def test_no_double_skipping_and_no_lost_bugs(self, workload):
        params = dict(init_size=2, test_size=3)
        cls = ALL_WORKLOADS[workload]

        def bugset(report):
            return sorted(
                bug.dedup_key() for bug in report.unique_bugs()
            )

        baseline = XFDetector(DetectorConfig()).run(cls(**params))
        combined = XFDetector(DetectorConfig(
            static_prune=True, plan_mode="mechanism",
        )).run(cls(**params))
        assert bugset(combined) == bugset(baseline)
        stats = combined.stats
        # The plan partitions the (post-prune) failure points exactly:
        # every point is either executed or plan-skipped, never both.
        assert (
            stats.failure_points_executed
            + stats.failure_points_skipped_by_plan
            == stats.failure_points
        )
        assert stats.failure_points < baseline.stats.failure_points
        pruned = combined.telemetry.metrics.value(
            "injector.pruned_static"
        )
        assert pruned > 0
