"""Unit and property tests for the interval map behind the shadow PM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._rangemap import RangeMap


class TestBasics:
    def test_empty_map_returns_default(self):
        rmap = RangeMap(default="d")
        assert rmap.get(0) == "d"
        assert rmap.get(12345) == "d"
        assert not rmap
        assert len(rmap) == 0

    def test_set_and_get(self):
        rmap = RangeMap()
        rmap.set(10, 20, "a")
        assert rmap.get(9) is None
        assert rmap.get(10) == "a"
        assert rmap.get(19) == "a"
        assert rmap.get(20) is None

    def test_empty_range_is_noop(self):
        rmap = RangeMap()
        rmap.set(10, 10, "a")
        rmap.set(20, 10, "b")
        assert len(rmap) == 0

    def test_overwrite_middle_splits(self):
        rmap = RangeMap()
        rmap.set(0, 30, "a")
        rmap.set(10, 20, "b")
        assert rmap.get(5) == "a"
        assert rmap.get(15) == "b"
        assert rmap.get(25) == "a"
        assert len(rmap) == 3

    def test_overwrite_exact_boundaries(self):
        rmap = RangeMap()
        rmap.set(10, 20, "a")
        rmap.set(10, 20, "b")
        assert rmap.get(10) == "b"
        assert len(rmap) == 1

    def test_overwrite_spanning_multiple(self):
        rmap = RangeMap()
        rmap.set(0, 10, "a")
        rmap.set(10, 20, "b")
        rmap.set(20, 30, "c")
        rmap.set(5, 25, "x")
        assert [v for _s, _e, v in rmap.iter_ranges()] == ["a", "x", "c"]

    def test_adjacent_equal_values_coalesce(self):
        rmap = RangeMap()
        rmap.set(0, 10, "a")
        rmap.set(10, 20, "a")
        assert len(rmap) == 1
        assert list(rmap.iter_ranges()) == [(0, 20, "a")]

    def test_adjacent_different_values_do_not_coalesce(self):
        rmap = RangeMap()
        rmap.set(0, 10, "a")
        rmap.set(10, 20, "b")
        assert len(rmap) == 2

    def test_covers(self):
        rmap = RangeMap()
        rmap.set(5, 8, True)
        assert not rmap.covers(4)
        assert rmap.covers(5)
        assert rmap.covers(7)
        assert not rmap.covers(8)


class TestIteration:
    def test_iter_ranges_window_clips(self):
        rmap = RangeMap()
        rmap.set(0, 100, "a")
        assert list(rmap.iter_ranges(30, 40)) == [(30, 40, "a")]

    def test_iter_ranges_requires_both_bounds(self):
        rmap = RangeMap()
        with pytest.raises(ValueError):
            list(rmap.iter_ranges(start=1))

    def test_iter_with_gaps(self):
        rmap = RangeMap(default="gap")
        rmap.set(10, 20, "a")
        rmap.set(30, 40, "b")
        got = list(rmap.iter_with_gaps(0, 50))
        assert got == [
            (0, 10, "gap"),
            (10, 20, "a"),
            (20, 30, "gap"),
            (30, 40, "b"),
            (40, 50, "gap"),
        ]

    def test_iter_with_gaps_fully_uncovered(self):
        rmap = RangeMap(default=0)
        assert list(rmap.iter_with_gaps(5, 8)) == [(5, 8, 0)]

    def test_first_match(self):
        rmap = RangeMap(default=0)
        rmap.set(10, 20, 5)
        assert rmap.first_match(0, 30, lambda v: v == 5) == (10, 20, 5)
        assert rmap.first_match(0, 9, lambda v: v == 5) is None

    def test_first_match_considers_gaps(self):
        rmap = RangeMap(default="gap")
        rmap.set(10, 20, "a")
        assert rmap.first_match(
            0, 30, lambda v: v == "gap"
        ) == (0, 10, "gap")


class TestUpdateAndClear:
    def test_update_transforms_values_and_gaps(self):
        rmap = RangeMap(default=0)
        rmap.set(10, 20, 1)
        rmap.update(5, 25, lambda v: v + 1)
        assert rmap.get(7) == 1  # gap transformed from default
        assert rmap.get(15) == 2
        assert rmap.get(22) == 1

    def test_clear_window(self):
        rmap = RangeMap()
        rmap.set(0, 30, "a")
        rmap.clear(10, 20)
        assert rmap.get(5) == "a"
        assert rmap.get(15) is None
        assert rmap.get(25) == "a"

    def test_clear_all(self):
        rmap = RangeMap()
        rmap.set(0, 30, "a")
        rmap.clear()
        assert len(rmap) == 0

    def test_copy_is_independent(self):
        rmap = RangeMap()
        rmap.set(0, 10, "a")
        dup = rmap.copy()
        dup.set(0, 10, "b")
        assert rmap.get(5) == "a"
        assert dup.get(5) == "b"


# ----------------------------------------------------------------------
# Property-based tests: the map must behave exactly like a plain
# per-address dict under arbitrary operation sequences.
# ----------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear"]),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(_ops)
def test_rangemap_matches_dict_model(ops):
    rmap = RangeMap(default=-1)
    model = {}
    for op, start, length, value in ops:
        end = start + length
        if op == "set":
            rmap.set(start, end, value)
            for address in range(start, end):
                model[address] = value
        else:
            rmap.clear(start, end)
            for address in range(start, end):
                model.pop(address, None)
        rmap.check_invariants()
    for address in range(0, 261):
        assert rmap.get(address) == model.get(address, -1)


@settings(max_examples=100, deadline=None)
@given(_ops, st.integers(0, 200), st.integers(0, 200))
def test_iter_with_gaps_covers_window_exactly(ops, a, b):
    start, end = min(a, b), max(a, b) + 1
    rmap = RangeMap(default=None)
    for op, s, length, value in ops:
        if op == "set":
            rmap.set(s, s + length, value)
    cursor = start
    for s, e, _v in rmap.iter_with_gaps(start, end):
        assert s == cursor, "segments must be contiguous"
        assert s < e
        cursor = e
    assert cursor == end
