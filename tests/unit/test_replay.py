"""Tests for the backend replayer's read classification and performance
checks."""

from repro._location import SourceLocation
from repro.core.config import DetectorConfig
from repro.core.replay import TraceReplayer
from repro.core.report import BugKind, DetectionReport
from repro.core.shadow import ShadowPM
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder

W = SourceLocation("writer.py", 1, "w")
R = SourceLocation("reader.py", 2, "r")


def make_replayers(config=None):
    config = config if config is not None else DetectorConfig()
    shadow = ShadowPM()
    report = DetectionReport("t")
    pre = TraceReplayer(shadow, config, "pre", report)
    return shadow, report, pre, config


def post_replayer(shadow, report, config, **kwargs):
    return TraceReplayer(
        shadow.copy(), config, "post", report, failure_point=0, **kwargs
    )


def ev(rec, kind, addr=0, size=0, info="", ip=None):
    return rec.append(kind, addr, size, info, ip)


def pre_sequence(pre, rec, ops):
    for op in ops:
        pre.process(op)


class TestReadClassification:
    def _pre_store(self, pre, rec, addr, persist=False):
        pre.process(ev(rec, EventKind.STORE, addr, 8, ip=W))
        if persist:
            pre.process(ev(rec, EventKind.FLUSH, addr - addr % 64, 64,
                           "CLWB"))
            pre.process(ev(rec, EventKind.FENCE, info="SFENCE"))

    def test_read_of_modified_data_is_race(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1
        bug = report.races[0]
        assert bug.kind is BugKind.CROSS_FAILURE_RACE
        assert bug.reader_ip is R
        assert bug.writer_ip is W
        assert bug.failure_point == 0

    def test_read_of_pending_data_is_race(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.STORE, 0x1000, 8, ip=W))
        pre.process(ev(rec, EventKind.FLUSH, 0x1000, 64, "CLWB"))
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1

    def test_read_of_persisted_data_is_clean(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000, persist=True)
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert report.bugs == []

    def test_read_of_untouched_data_is_clean(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x9000, 8, ip=R))
        assert report.bugs == []

    def test_post_overwrite_exempts_read(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)  # modified, unpersisted
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.STORE, 0x1000, 8, ip=R))
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert report.bugs == []

    def test_post_flush_does_not_launder_pre_data(self):
        """A post-failure flush+fence of pre-failure volatile data must
        not make later reads look safe: the flushed value came from the
        crash image."""
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.FLUSH, 0x1000, 64, "CLWB"))
        post.process(ev(rec, EventKind.FENCE, info="SFENCE"))
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1

    def test_semantic_bug_on_uncommitted_persisted_data(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.COMMIT_VAR, 0x10, 8, "v"))
        pre.process(ev(rec, EventKind.COMMIT_RANGE, 0x1000, 8, "v"))
        self._pre_store(pre, rec, 0x1000, persist=True)
        # No commit write: member persisted but uncommitted.
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.semantic_bugs) == 1
        assert not report.races

    def test_commit_var_read_is_benign(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.COMMIT_VAR, 0x10, 8, "v"))
        pre.process(ev(rec, EventKind.STORE, 0x10, 8, ip=W))
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x10, 8, ip=R))
        assert report.bugs == []
        assert report.stats.benign_races == 1

    def test_uninitialized_read_is_race(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.ALLOC, 0x1000, 64, "zeroed"))
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1
        assert "never-initialized" in report.races[0].detail

    def test_first_read_only_optimization(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1

    def test_every_read_checked_when_optimization_off(self):
        config = DetectorConfig(first_read_only=False)
        shadow, report, pre, _ = make_replayers(config)
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 2

    def test_reads_in_library_regions_unchecked(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LIB_BEGIN, info="recover"))
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        post.process(ev(rec, EventKind.LIB_END, info="recover"))
        assert report.bugs == []

    def test_reads_in_skip_detection_unchecked(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.SKIP_DET_BEGIN))
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        post.process(ev(rec, EventKind.SKIP_DET_END))
        assert report.bugs == []

    def test_roi_confines_checks(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)
        post = post_replayer(shadow, report, config, has_roi=True)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert report.bugs == []  # outside the RoI
        post.process(ev(rec, EventKind.ROI_BEGIN))
        post.process(ev(rec, EventKind.LOAD, 0x1008, 8, ip=R))
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1

    def test_partial_overlap_read_flags_only_dirty_bytes(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        self._pre_store(pre, rec, 0x1000)  # 8 dirty bytes
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x0FF8, 24, ip=R))
        assert len(report.races) == 1
        bug = report.races[0]
        assert bug.address == 0x1000
        assert bug.size == 8


class TestPerfChecks:
    def test_redundant_flush_reported(self):
        shadow, report, pre, _ = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.FLUSH, 0x1000, 64, "CLWB", ip=W))
        assert len(report.perf_bugs) == 1

    def test_useful_flush_not_reported(self):
        shadow, report, pre, _ = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.STORE, 0x1000, 8, ip=W))
        pre.process(ev(rec, EventKind.FLUSH, 0x1000, 64, "CLWB", ip=W))
        assert report.perf_bugs == []

    def test_perf_checks_suppressed_in_lib_regions(self):
        shadow, report, pre, _ = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.LIB_BEGIN, info="fn"))
        pre.process(ev(rec, EventKind.FLUSH, 0x1000, 64, "CLWB", ip=W))
        pre.process(ev(rec, EventKind.LIB_END, info="fn"))
        assert report.perf_bugs == []

    def test_perf_reporting_can_be_disabled(self):
        config = DetectorConfig(report_perf_bugs=False)
        shadow, report, pre, _ = make_replayers(config)
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.FLUSH, 0x1000, 64, "CLWB", ip=W))
        assert report.perf_bugs == []

    def test_duplicate_tx_add_reported(self):
        shadow, report, pre, _ = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.TX_BEGIN, info="1"))
        pre.process(ev(rec, EventKind.TX_ADD, 0x1000, 8, "1", ip=W))
        pre.process(ev(rec, EventKind.TX_ADD, 0x1000, 8, "1", ip=W))
        assert len(report.perf_bugs) == 1
        assert "duplicate TX_ADD" in report.perf_bugs[0].detail

    def test_tx_add_after_commit_not_duplicate(self):
        shadow, report, pre, _ = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.TX_BEGIN, info="1"))
        pre.process(ev(rec, EventKind.TX_ADD, 0x1000, 8, "1", ip=W))
        pre.process(ev(rec, EventKind.TX_COMMIT, info="1"))
        pre.process(ev(rec, EventKind.TX_BEGIN, info="2"))
        pre.process(ev(rec, EventKind.TX_ADD, 0x1000, 8, "2", ip=W))
        assert report.perf_bugs == []


class TestTxReplaySemantics:
    def test_unadded_tx_write_race_before_commit(self):
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.TX_BEGIN, info="1"))
        pre.process(ev(rec, EventKind.STORE, 0x1000, 8, ip=W))
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1

    def test_unadded_tx_write_consistent_after_commit(self):
        """After TX_COMMIT the unadded write is final program intent:
        no semantic bug, but still a race while unflushed."""
        shadow, report, pre, config = make_replayers()
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.TX_BEGIN, info="1"))
        pre.process(ev(rec, EventKind.STORE, 0x1000, 8, ip=W))
        pre.process(ev(rec, EventKind.TX_COMMIT, info="1"))
        post = post_replayer(shadow, report, config)
        post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
        assert len(report.races) == 1
        assert report.semantic_bugs == []

    def test_fail_fast_stops_analysis(self):
        from repro.core.replay import StopAnalysis

        import pytest

        config = DetectorConfig(fail_fast=True)
        shadow, report, pre, _ = make_replayers(config)
        rec = TraceRecorder()
        pre.process(ev(rec, EventKind.STORE, 0x1000, 8, ip=W))
        post = post_replayer(shadow, report, config)
        with pytest.raises(StopAnalysis):
            post.process(ev(rec, EventKind.LOAD, 0x1000, 8, ip=R))
