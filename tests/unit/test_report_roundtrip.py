"""Report JSON and NDJSON exporters must agree on field names.

``xfdetector run --json`` emits ``DetectionReport.to_dict()``; the
NDJSON sidecars emit ``repro.obs.export.report_records``.  A consumer
must be able to treat the two interchangeably, so every bug/stats
field name in one appears in the other.
"""

import json

from repro._location import SourceLocation
from repro.core.report import Bug, BugKind, DetectionReport
from repro.obs import read_ndjson, report_records, write_ndjson


def make_report():
    report = DetectionReport("unit_workload")
    report.bugs.append(Bug(
        kind=BugKind.CROSS_FAILURE_RACE,
        detail="read of data not guaranteed persisted",
        address=0x1000,
        size=8,
        failure_point=2,
        reader_ip=SourceLocation("reader.py", 10, "read"),
        writer_ip=SourceLocation("writer.py", 20, "write"),
    ))
    report.bugs.append(Bug(
        kind=BugKind.PERFORMANCE,
        detail="redundant writeback",
        address=0x2000,
        size=64,
    ))
    report.stats.failure_points = 3
    report.stats.pre_trace_events = 100
    report.stats.post_trace_events = 250
    report.stats.pre_failure_seconds = 0.5
    report.stats.post_failure_seconds = 1.5
    report.stats.backend_seconds = 0.25
    return report


class TestFieldAgreement:
    def test_bug_field_names_match(self):
        report = make_report()
        json_bugs = report.to_dict()["bugs"]
        ndjson_bugs = [
            record for record in report_records(report)
            if record["type"] == "bug"
        ]
        assert len(json_bugs) == len(ndjson_bugs)
        for json_bug, ndjson_bug in zip(json_bugs, ndjson_bugs):
            # NDJSON adds only the envelope (type + workload).
            assert set(ndjson_bug) - set(json_bug) == \
                {"type", "workload"}
            for key, value in json_bug.items():
                assert ndjson_bug[key] == value, key

    def test_stats_field_names_match(self):
        report = make_report()
        json_stats = report.to_dict()["stats"]
        (ndjson_stats,) = [
            record for record in report_records(report)
            if record["type"] == "stats"
        ]
        assert set(ndjson_stats) - set(json_stats) == \
            {"type", "workload"}
        for key, value in json_stats.items():
            assert ndjson_stats[key] == value, key

    def test_unique_flag_respected(self):
        report = make_report()
        report.bugs.append(report.bugs[0])  # duplicate occurrence
        unique = [r for r in report_records(report, unique=True)
                  if r["type"] == "bug"]
        every = [r for r in report_records(report, unique=False)
                 if r["type"] == "bug"]
        assert len(unique) == 2
        assert len(every) == 3
        assert len(report.to_dict(unique=True)["bugs"]) == 2


class TestRoundTrip:
    def test_to_json_parses_back(self):
        report = make_report()
        payload = json.loads(report.to_json())
        assert payload["workload"] == "unit_workload"
        assert payload["stats"]["failure_points"] == 3

    def test_ndjson_file_round_trip(self, tmp_path):
        report = make_report()
        path = tmp_path / "report.ndjson"
        write_ndjson(path, report_records(report))
        records = read_ndjson(path)
        bugs = [r for r in records if r["type"] == "bug"]
        stats = [r for r in records if r["type"] == "stats"]
        assert len(bugs) == 2 and len(stats) == 1
        assert bugs[0]["kind"] == BugKind.CROSS_FAILURE_RACE.value
        assert bugs[0]["writer"] == \
            str(SourceLocation("writer.py", 20, "write"))
        assert stats[0]["post_trace_events"] == 250
