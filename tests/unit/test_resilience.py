"""Building blocks of the resilience layer (repro.resilience)."""

import pytest

from repro.core.config import DetectorConfig
from repro.errors import (
    ChaosCrash,
    DeadlineExceeded,
    HarnessError,
    ReproError,
    TraversalLimitError,
)
from repro.exec import SerialExecutor, ThreadExecutor
from repro.resilience import (
    ChaosPolicy,
    Deadline,
    Incident,
    IncidentKind,
    IncidentLog,
    PhaseSupervisor,
    ResilienceContext,
    Watchdog,
    classify_failure,
    deserialize_bug,
    serialize_bug,
)
from repro.workloads.base import TraversalGuard


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_step_budget_raises(self):
        deadline = Deadline(max_steps=3)
        for _ in range(3):
            deadline.tick()
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.tick()
        assert excinfo.value.steps == 4

    def test_wall_budget_raises(self):
        clock = FakeClock()
        deadline = Deadline(max_seconds=1.0, clock=clock)
        deadline.tick()
        clock.advance(1.5)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.tick()
        assert excinfo.value.seconds == pytest.approx(1.5)

    def test_no_budget_never_expires(self):
        deadline = Deadline()
        for _ in range(10_000):
            deadline.tick()

    def test_check_time_does_not_count_steps(self):
        deadline = Deadline(max_steps=1)
        deadline.check_time()
        deadline.check_time()
        assert deadline.steps == 0

    def test_deadline_exceeded_survives_pickling(self):
        import pickle

        error = DeadlineExceeded("over budget", steps=7, seconds=1.5)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, DeadlineExceeded)
        assert clone.steps == 7
        assert str(clone) == str(error)


class TestWatchdog:
    def test_fires_after_timeout(self):
        import threading

        fired = threading.Event()
        watchdog = Watchdog(0.01, fired.set)
        assert fired.wait(2.0)
        assert watchdog.fired

    def test_cancel_disarms(self):
        calls = []
        with Watchdog(0.05, lambda: calls.append(1)) as watchdog:
            pass  # context exit cancels immediately
        watchdog._thread.join(2.0)
        assert not watchdog.fired
        assert calls == []


class TestChaosPolicy:
    def test_parse_valid_spec(self):
        policy = ChaosPolicy.parse("crash:0.1,hang:0.05")
        assert policy.rates == {"crash": 0.1, "hang": 0.05}

    def test_parse_drops_malformed_clauses(self):
        policy = ChaosPolicy.parse("crash:0.2,bogus:1,hang:nope,,")
        assert policy.rates == {"crash": 0.2}

    def test_parse_empty_or_useless_is_none(self):
        assert ChaosPolicy.parse("") is None
        assert ChaosPolicy.parse(None) is None
        assert ChaosPolicy.parse("bogus:1") is None
        assert ChaosPolicy.parse("crash:0") is None

    def test_rates_clamped_to_one(self):
        policy = ChaosPolicy.parse("crash:7")
        assert policy.rates == {"crash": 1.0}

    def test_decides_is_deterministic(self):
        policy = ChaosPolicy({"crash": 0.5})
        rolls = [
            policy.decides("crash", "post_exec", fid, 0, 1)
            for fid in range(100)
        ]
        again = [
            policy.decides("crash", "post_exec", fid, 0, 1)
            for fid in range(100)
        ]
        assert rolls == again
        assert any(rolls) and not all(rolls)

    def test_attempt_changes_the_roll(self):
        policy = ChaosPolicy({"crash": 0.5})
        first = [
            policy.decides("crash", "post_exec", fid, 0, 1)
            for fid in range(100)
        ]
        second = [
            policy.decides("crash", "post_exec", fid, 0, 2)
            for fid in range(100)
        ]
        assert first != second

    def test_inject_crash_raises_chaos_crash(self):
        policy = ChaosPolicy({"crash": 1.0})
        with pytest.raises(ChaosCrash) as excinfo:
            policy.inject("post_exec", 0, None, 1, forked=False)
        assert excinfo.value.transient

    def test_inject_hang_without_deadline_raises_immediately(self):
        policy = ChaosPolicy({"hang": 1.0})
        with pytest.raises(DeadlineExceeded):
            policy.inject(
                "post_exec", 0, None, 1, forked=False, deadline=None
            )

    def test_inject_hang_spins_until_the_deadline(self):
        clock = FakeClock()
        deadline = Deadline(max_seconds=0.01, clock=clock)
        policy = ChaosPolicy({"hang": 1.0})
        with pytest.raises(DeadlineExceeded):
            policy.inject(
                "post_exec", 0, None, 1, forked=False,
                deadline=deadline, sleep=clock.advance,
            )
        assert clock.now > 0.01


class TestClassifyFailure:
    def test_deadline_is_a_hang(self):
        kind, transient = classify_failure(DeadlineExceeded("slow"))
        assert kind is IncidentKind.HANG
        assert not transient

    def test_chaos_crash_is_a_transient_worker_death(self):
        kind, transient = classify_failure(ChaosCrash("boom"))
        assert kind is IncidentKind.WORKER_DEATH
        assert transient

    def test_broken_pool_is_a_transient_worker_death(self):
        from concurrent.futures.process import BrokenProcessPool

        kind, transient = classify_failure(BrokenProcessPool("died"))
        assert kind is IncidentKind.WORKER_DEATH
        assert transient

    def test_harness_error_keeps_its_transient_flag(self):
        kind, transient = classify_failure(HarnessError("bug"))
        assert kind is IncidentKind.HARNESS_ERROR
        assert not transient

        class FlakyHarnessError(HarnessError):
            transient = True

        _kind, transient = classify_failure(FlakyHarnessError("flaky"))
        assert transient

    def test_unknown_exception_is_a_deterministic_harness_error(self):
        kind, transient = classify_failure(KeyError("oops"))
        assert kind is IncidentKind.HARNESS_ERROR
        assert not transient


class TestIncidentLog:
    def _incident(self, quarantined, kind=IncidentKind.WORKER_DEATH):
        return Incident(
            kind=kind, phase="post_exec", failure_point=3, variant=None,
            attempts=1, quarantined=quarantined, detail="it broke",
        )

    def test_str_and_dict(self):
        incident = self._incident(True, IncidentKind.HANG)
        text = str(incident)
        assert "[hang]" in text and "quarantined" in text
        data = incident.to_dict()
        assert data["kind"] == "hang"
        assert data["quarantined"] is True

    def test_degraded_tracks_quarantined(self):
        log = IncidentLog()
        assert not log.degraded
        log.record(self._incident(False))
        assert len(log) == 1
        assert not log.degraded
        log.record(self._incident(True))
        assert log.degraded
        assert log.quarantined_points() == {(3, None)}


class TestTraversalGuard:
    def test_trips_past_the_limit(self):
        guard = TraversalGuard("unit walk", limit=10)
        for _ in range(10):
            guard.step()
        with pytest.raises(TraversalLimitError) as excinfo:
            guard.step()
        assert "unit walk" in str(excinfo.value)

    def test_limit_error_is_a_finding_not_an_incident(self):
        # TraversalLimitError must remain a ReproError so the task body
        # reports it as a POST_FAILURE_CRASH finding.
        assert issubclass(TraversalLimitError, ReproError)
        kind, _transient = classify_failure(TraversalLimitError("x"))
        # ...and if it ever did reach the supervisor, it would
        # quarantine rather than retry (deterministic).
        assert kind is IncidentKind.HARNESS_ERROR


class TestExecutorErrorCapture:
    def _boom(self, _context, key):
        if key == 1:
            raise ValueError("task 1 exploded")
        return key * 10

    def test_serial_executor_captures_per_task_errors(self):
        outcomes = SerialExecutor().run_phase(None, self._boom, [0, 1, 2])
        assert [o.value for o in outcomes] == [0, None, 20]
        assert outcomes[1].error is not None
        assert "task 1 exploded" in str(outcomes[1].error)

    def test_thread_executor_captures_per_task_errors(self):
        executor = ThreadExecutor(2)
        try:
            outcomes = executor.run_phase(None, self._boom, [0, 1, 2])
        finally:
            executor.close()
        assert [o.value for o in outcomes] == [0, None, 20]
        assert isinstance(outcomes[1].error, ValueError)


class _FlakyPhase:
    """A submit callable that fails chosen keys a set number of times."""

    def __init__(self, failures):
        #: key -> list of exceptions to raise, first attempt first.
        self.failures = {k: list(v) for k, v in failures.items()}
        self.submissions = []

    def __call__(self, keys):
        from repro.exec.base import TaskOutcome

        self.submissions.append(list(keys))
        outcomes = []
        for key in keys:
            queue = self.failures.get(key)
            if queue:
                outcomes.append(TaskOutcome(None, error=queue.pop(0)))
            else:
                outcomes.append(TaskOutcome(("ok", key)))
        return outcomes


def _key(fid):
    """A post-exec-shaped task key: ``(fid, variant, mask)``."""
    return (fid, None, None)


class TestPhaseSupervisor:
    def _supervisor(self, incident_log, **config_kwargs):
        config = DetectorConfig(retry_backoff=0.0, **config_kwargs)
        return PhaseSupervisor(
            "post_exec", config, incident_log, sleep=lambda _s: None
        )

    def test_all_clean_is_a_single_wave(self):
        log = IncidentLog()
        phase = _FlakyPhase({})
        keys = [_key(0), _key(1), _key(2)]
        completed = self._supervisor(log).run(phase, keys)
        assert set(completed) == set(keys)
        assert len(phase.submissions) == 1
        assert len(log) == 0

    def test_transient_fault_retries_and_heals(self):
        log = IncidentLog()
        phase = _FlakyPhase({_key(1): [ChaosCrash("boom")]})
        keys = [_key(0), _key(1), _key(2)]
        completed = self._supervisor(log, max_retries=2).run(
            phase, keys
        )
        assert set(completed) == set(keys)
        assert phase.submissions == [keys, [_key(1)]]
        incidents = log.incidents
        assert len(incidents) == 1
        assert incidents[0].kind is IncidentKind.WORKER_DEATH
        assert incidents[0].failure_point == 1
        assert not incidents[0].quarantined
        assert not log.degraded

    def test_transient_fault_quarantines_after_max_retries(self):
        log = IncidentLog()
        phase = _FlakyPhase({_key(1): [ChaosCrash("boom")] * 5})
        completed = self._supervisor(log, max_retries=2).run(
            phase, [_key(0), _key(1)]
        )
        assert set(completed) == {_key(0)}
        # 1 initial + 2 retries = 3 attempts, then quarantine.
        assert phase.submissions == [
            [_key(0), _key(1)], [_key(1)], [_key(1)]
        ]
        incidents = log.incidents
        assert [i.quarantined for i in incidents] == [
            False, False, True
        ]
        assert incidents[-1].attempts == 3
        assert log.degraded

    def test_deterministic_fault_quarantines_immediately(self):
        log = IncidentLog()
        phase = _FlakyPhase({_key(2): [KeyError("harness bug")] * 5})
        completed = self._supervisor(log, max_retries=3).run(
            phase, [_key(0), _key(1), _key(2)]
        )
        assert set(completed) == {_key(0), _key(1)}
        assert len(phase.submissions) == 1
        assert log.incidents[0].kind is IncidentKind.HARNESS_ERROR
        assert log.incidents[0].quarantined

    def test_attempts_shared_with_resilience_context(self):
        log = IncidentLog()
        config = DetectorConfig(
            chaos="crash:0.000001", retry_backoff=0.0, max_retries=1
        )
        resilience = ResilienceContext.from_config(config, "post_exec")
        supervisor = PhaseSupervisor(
            "post_exec", config, log, resilience, sleep=lambda _s: None
        )
        phase = _FlakyPhase({})
        supervisor.run(phase, [(0, None, None)])
        assert resilience.attempts[(0, None, None)] == 1


class TestResilienceContext:
    def test_disabled_when_all_knobs_off(self):
        config = DetectorConfig()
        assert ResilienceContext.from_config(config, "post_exec") is None

    def test_deadline_only(self):
        config = DetectorConfig(exec_deadline=2.0)
        resilience = ResilienceContext.from_config(config, "post_exec")
        deadline = resilience.new_deadline()
        assert deadline.max_seconds == 2.0
        assert deadline.max_steps is None

    def test_guard_task_without_fork_has_no_watchdog(self):
        config = DetectorConfig(exec_deadline=2.0)
        resilience = ResilienceContext.from_config(config, "post_exec")
        deadline, watchdog = resilience.guard_task((0, None, None))
        assert deadline is not None
        assert watchdog is None  # not in a forked worker

    def test_invalid_chaos_spec_alone_disables(self):
        config = DetectorConfig(chaos="bogus:1")
        assert ResilienceContext.from_config(config, "post_exec") is None


class TestBugRoundTrip:
    def test_bug_survives_serialization(self):
        from repro._location import UNKNOWN_LOCATION, _make_location
        from repro.core.report import Bug, BugKind

        bug = Bug(
            kind=BugKind.CROSS_FAILURE_RACE,
            detail="read of unflushed line",
            address=4096,
            size=8,
            failure_point=3,
            reader_ip=_make_location("btree.py", 42, "get"),
            writer_ip=UNKNOWN_LOCATION,
        )
        clone = deserialize_bug(serialize_bug(bug))
        assert clone == bug
        # UNKNOWN_LOCATION must come back as the sentinel itself:
        # Bug.__str__ compares against it by identity.
        assert clone.writer_ip is UNKNOWN_LOCATION

    def test_round_trip_is_json_safe(self):
        import json

        from repro.core.report import Bug, BugKind

        bug = Bug(
            kind=BugKind.POST_FAILURE_CRASH,
            detail="recovery exploded",
            failure_point=0,
        )
        payload = json.loads(json.dumps(serialize_bug(bug)))
        assert deserialize_bug(payload) == bug
