"""SARIF 2.1.0 export round-trip tests (repro.analysis.sarif)."""

import json

from repro.analysis import lint_workload
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.sarif import (
    SARIF_VERSION,
    TOOL_NAME,
    findings_from_sarif,
    to_sarif,
    to_sarif_json,
)
from repro.workloads import ALL_WORKLOADS


def _report(findings, target="test"):
    return AnalysisReport(target, list(findings))


SAMPLE = [
    Finding(
        rule="XF-P001", file="src/a.py", line=10,
        message="store never persisted", function="update",
        stack=("src/a.py:10 in update", "src/b.py:4 in run"),
    ),
    Finding(
        rule="XF-M002", file="src/b.py", line=20,
        message="commit precedes its log", function="commit",
    ),
    Finding(
        rule="XF-F001", file="src/c.py", line=5,
        message="duplicate flush", function="flush_twice",
    ),
]


class TestStructure:
    def test_header_and_tool(self):
        log = to_sarif(_report(SAMPLE))
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == TOOL_NAME

    def test_rules_are_deduplicated_and_indexed(self):
        log = to_sarif(_report(SAMPLE + SAMPLE))
        (run,) = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(
            {f.rule for f in SAMPLE}
        )
        for result in run["results"]:
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]

    def test_severity_levels(self):
        log = to_sarif(_report(SAMPLE))
        levels = {
            r["ruleId"]: r["level"] for r in log["runs"][0]["results"]
        }
        assert levels["XF-M002"] == "error"  # race
        assert levels["XF-P001"] == "error"  # race
        assert levels["XF-F001"] == "note"  # performance

    def test_multiple_reports_merge_targets(self):
        log = to_sarif([
            _report(SAMPLE[:1], target="one"),
            _report(SAMPLE[1:], target="two"),
        ])
        (run,) = log["runs"]
        assert run["properties"]["targets"] == ["one", "two"]
        assert len(run["results"]) == len(SAMPLE)


class TestRoundTrip:
    def test_findings_survive_a_round_trip(self):
        text = to_sarif_json(_report(SAMPLE))
        parsed = findings_from_sarif(text)
        assert parsed == SAMPLE

    def test_round_trip_from_dict(self):
        log = to_sarif(_report(SAMPLE))
        assert findings_from_sarif(log) == SAMPLE

    def test_json_is_valid_and_deterministic(self):
        a = to_sarif_json(_report(SAMPLE))
        b = to_sarif_json(_report(SAMPLE))
        assert a == b
        json.loads(a)

    def test_real_lint_report_round_trips(self):
        workload = ALL_WORKLOADS["hashmap_atomic"](
            faults={"skip_persist_geometry"},
            init_size=2, test_size=3,
        )
        report = lint_workload(workload)
        assert report.findings  # the fault is statically detectable
        parsed = findings_from_sarif(to_sarif_json(report))
        assert parsed == list(report.findings)

    def test_empty_report_round_trips(self):
        text = to_sarif_json(_report([]))
        assert findings_from_sarif(text) == []
        log = json.loads(text)
        assert log["runs"][0]["results"] == []
