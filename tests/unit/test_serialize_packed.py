"""Tests for the v2 packed binary trace format.

Covers the three guarantees the format makes: lossless round-trips
through the columnar recorder (every event kind, randomized payloads),
auto-detection in ``load_trace`` so v1 readers need no changes, and
bit-for-bit compatibility with archived v1 text dumps via the checked-in
fixture.
"""

import random
from pathlib import Path

import pytest

from repro._location import UNKNOWN_LOCATION, SourceLocation
from repro.trace import (
    EventKind,
    TraceEvent,
    TraceRecorder,
    dump_packed,
    format_trace,
    is_packed,
    load_packed,
    load_trace,
    parse_trace,
)
from repro.trace.serialize import PACKED_MAGIC

_FIXTURE = Path(__file__).resolve().parents[1] / "fixtures" / "trace_v1.txt"

_LOCATIONS = [
    None,
    SourceLocation("/repo/src/wl.py", 42, "insert"),
    SourceLocation("wl.py", 1, "Outer.method"),
    SourceLocation("/a b/odd path.py", 999, "Cls.method.<locals>.inner"),
]


def _random_recorder(rng, count=300):
    recorder = TraceRecorder()
    kinds = list(EventKind)
    for _ in range(count):
        kind = rng.choice(kinds)
        recorder.append(
            kind,
            addr=rng.randrange(0, 1 << 48),
            size=rng.choice([0, 1, 8, 64, 4096]),
            info=rng.choice(["", "CLWB", "1", "valid flag",
                             "atomic word write"]),
            ip=rng.choice(_LOCATIONS),
            tid=rng.randrange(0, 4),
        )
    return recorder


class TestPackedRoundTrip:
    def test_recorder_round_trips(self):
        rng = random.Random(20260809)
        recorder = _random_recorder(rng)
        blob = dump_packed(recorder)
        assert is_packed(blob)
        restored = load_packed(blob)
        assert restored.stage == recorder.stage
        assert restored.has_roi == recorder.has_roi
        assert restored.events == recorder.events

    def test_every_kind_survives(self):
        recorder = TraceRecorder(stage="post")
        for seq, kind in enumerate(EventKind):
            recorder.append(kind, addr=seq * 64, size=8,
                            info=kind.value, tid=seq % 3)
        restored = load_packed(dump_packed(recorder))
        assert restored.events == recorder.events
        assert restored.stage == "post"

    def test_event_iterable_source(self):
        events = [
            TraceEvent(seq=0, kind=EventKind.STORE, addr=0x1000, size=8,
                       info="", ip=SourceLocation("f.py", 1, "f")),
            TraceEvent(seq=1, kind=EventKind.FENCE, info="SFENCE"),
        ]
        assert load_packed(dump_packed(events)).events == events

    def test_roi_flag_and_interning(self):
        recorder = TraceRecorder()
        loc = SourceLocation("wl.py", 5, "run")
        recorder.append(EventKind.ROI_BEGIN)
        recorder.append(EventKind.STORE, addr=0x10, size=8, ip=loc)
        recorder.append(EventKind.LOAD, addr=0x10, size=8, ip=loc)
        restored = load_packed(dump_packed(recorder))
        assert restored.has_roi
        ips = [event.ip for event in restored.events]
        assert ips[0] is UNKNOWN_LOCATION
        # The two identical call sites decode to one interned object.
        assert ips[1] is ips[2]

    def test_empty_trace(self):
        restored = load_packed(dump_packed(TraceRecorder()))
        assert len(restored) == 0
        assert restored.events == []

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            load_packed(b"not a trace at all")


class TestAutoDetection:
    def test_load_trace_reads_packed(self):
        rng = random.Random(7)
        recorder = _random_recorder(rng, count=50)
        assert load_trace(dump_packed(recorder)) == recorder.events

    def test_load_trace_reads_v1_text(self):
        rng = random.Random(8)
        recorder = _random_recorder(rng, count=50)
        text = format_trace(recorder.events)
        assert load_trace(text) == recorder.events
        # v1 bytes (a file read in binary mode) work too.
        assert load_trace(text.encode("utf-8")) == recorder.events

    def test_magic_does_not_collide_with_text(self):
        assert not is_packed("0 STORE 0x10 8 0 - | f.py:1:f")
        assert not is_packed(b"# comment\n")
        assert is_packed(PACKED_MAGIC + b"anything")


class TestV1FixtureCompat:
    def test_fixture_parses(self):
        events = load_trace(_FIXTURE.read_text())
        assert len(events) == 13
        assert events[0].kind is EventKind.ROI_BEGIN
        assert events[0].ip is UNKNOWN_LOCATION
        assert events[3].kind is EventKind.STORE
        assert events[3].addr == 0x10000000
        assert events[8].info == "atomic word write"
        assert events[8].ip.filename == "/a b/odd path.py"
        assert events[8].ip.function == "Cls.method.<locals>.inner"
        assert events[11].info == "valid flag"

    def test_fixture_upgrades_to_packed_losslessly(self):
        events = parse_trace(_FIXTURE.read_text())
        assert load_packed(dump_packed(events)).events == events
