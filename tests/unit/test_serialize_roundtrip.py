"""Property-style round-trip tests for ``repro.trace.serialize``.

Every event kind in ``repro.trace.events`` — including the RoI /
skip-detection / commit-variable markers — must survive
``parse_trace(format_trace(events))`` unchanged, for randomized
addresses, sizes, thread ids, infos (with spaces), and source
locations.
"""

import random

import pytest

from repro._location import UNKNOWN_LOCATION, SourceLocation
from repro.trace.events import EventKind, TraceEvent
from repro.trace.serialize import (
    format_event,
    format_trace,
    parse_event,
    parse_trace,
)

#: Kind-typical info payloads, several containing spaces (the trailing
#: free-form field of the line format).
_INFOS = {
    EventKind.FLUSH: ["CLWB", "CLFLUSHOPT", "CLFLUSH"],
    EventKind.FENCE: ["SFENCE", "MFENCE", "drain"],
    EventKind.TX_BEGIN: ["1", "2"],
    EventKind.TX_ADD: ["1"],
    EventKind.TX_COMMIT: ["1"],
    EventKind.TX_ABORT: ["1"],
    EventKind.ALLOC: ["zeroed", "raw"],
    EventKind.LIB_BEGIN: ["pobj_alloc", "atomic word write"],
    EventKind.LIB_END: ["pobj_alloc", "atomic word write"],
    EventKind.COMMIT_VAR: ["valid flag", "count_dirty"],
    EventKind.COMMIT_RANGE: ["valid flag"],
    EventKind.FAILURE_POINT: ["0", "17"],
    EventKind.HINT_FAILURE_POINT: ["atomic word write", "SFENCE"],
}

_LOCATIONS = [
    UNKNOWN_LOCATION,
    SourceLocation("/repo/src/wl.py", 42, "insert"),
    SourceLocation("wl.py", 1, "Outer.method"),
    SourceLocation("/a b/odd path.py", 999,
                   "Cls.method.<locals>.inner"),
]


def _random_event(rng, seq, kind):
    sized = kind in (
        EventKind.STORE, EventKind.NT_STORE, EventKind.LOAD,
        EventKind.FLUSH, EventKind.TX_ADD, EventKind.ALLOC,
        EventKind.FREE, EventKind.COMMIT_RANGE,
    )
    infos = _INFOS.get(kind, [""])
    return TraceEvent(
        seq=seq,
        kind=kind,
        addr=rng.randrange(0, 1 << 48) if sized else 0,
        size=rng.choice([1, 8, 64, 4096]) if sized else 0,
        info=rng.choice(infos),
        ip=rng.choice(_LOCATIONS),
        tid=rng.randrange(0, 4),
    )


class TestEventRoundTrip:
    @pytest.mark.parametrize("kind", list(EventKind),
                             ids=lambda k: k.value)
    def test_every_kind_round_trips(self, kind):
        rng = random.Random(hash(kind.value) & 0xFFFF)
        for seq in range(25):
            event = _random_event(rng, seq, kind)
            assert parse_event(format_event(event)) == event

    def test_info_with_spaces_round_trips(self):
        event = TraceEvent(
            seq=3, kind=EventKind.COMMIT_VAR, addr=0, size=0,
            info="a name with   runs  of spaces",
            ip=SourceLocation("f.py", 7, "setup"), tid=0,
        )
        assert parse_event(format_event(event)) == event

    def test_empty_info_round_trips_as_dash(self):
        event = TraceEvent(seq=0, kind=EventKind.STORE, addr=0x1000,
                           size=8, info="",
                           ip=SourceLocation("f.py", 1, "f"))
        line = format_event(event)
        assert " - | " in line
        assert parse_event(line).info == ""

    def test_unknown_location_round_trips_identically(self):
        event = TraceEvent(seq=0, kind=EventKind.FENCE, info="SFENCE")
        parsed = parse_event(format_event(event))
        assert parsed.ip is UNKNOWN_LOCATION


class TestTraceRoundTrip:
    def test_mixed_trace_round_trips(self):
        rng = random.Random(20260806)
        events = [
            _random_event(rng, seq, rng.choice(list(EventKind)))
            for seq in range(400)
        ]
        assert parse_trace(format_trace(events)) == events

    def test_blank_lines_and_comments_are_skipped(self):
        rng = random.Random(7)
        events = [_random_event(rng, seq, EventKind.STORE)
                  for seq in range(3)]
        text = format_trace(events)
        noisy = "# header\n\n" + text.replace(
            "\n", "\n# interleaved comment\n\n", 1
        )
        assert parse_trace(noisy) == events

    def test_malformed_lines_raise(self):
        with pytest.raises(ValueError):
            parse_event("0 STORE 0x10 8 0 -")  # no location separator
        with pytest.raises(ValueError):
            parse_event("0 STORE 0x10 | f.py:1:f")  # missing fields
