"""Unit coverage for the service package's pure parts.

Job specs, the job/shard state machine, shard planning, journal
merging, reaper policy (staleness + backoff + budgets), the journal
fsync knobs, deterministic retry jitter, and the doctor's findings —
everything that can be tested without forking a fleet.
"""

import json
import os
import time

import pytest

from repro.core import DetectorConfig
from repro.errors import JournalError
from repro.resilience import RunJournal, jitter_unit
from repro.resilience.journal import (
    _digest_ip,
    read_journal_records,
)
from repro.resilience.supervisor import PhaseSupervisor
from repro.service import JobStore, Reaper
from repro.service.jobstore import JobRecord, ShardRecord, StateError
from repro.service.shard import (
    HeartbeatSink,
    merge_shard_journals,
    plan_shards,
)
from repro.service.spec import JobSpec, SpecError


# ----------------------------------------------------------------------
# JobSpec
# ----------------------------------------------------------------------


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec(
            workload="btree", faults=["skip_add_leaf"], test_size=3,
            shards=4, label="nightly",
        )
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_workload_refused(self):
        with pytest.raises(SpecError):
            JobSpec(workload="nope")

    def test_unknown_field_refused(self):
        with pytest.raises(SpecError):
            JobSpec.from_dict({"workload": "btree", "bogus": 1})

    def test_bad_label_refused(self):
        with pytest.raises(SpecError):
            JobSpec(workload="btree", label="no spaces allowed")

    def test_shards_and_sizes_coerced(self):
        spec = JobSpec(workload="btree", shards=0, test_size=1)
        assert spec.shards == 1

    def test_detector_config_disables_progress(self):
        config = JobSpec(workload="btree").detector_config()
        assert config.progress is False
        assert isinstance(config, DetectorConfig)

    def test_detector_config_window_override(self):
        config = JobSpec(workload="btree").detector_config(
            failure_point_window=(3, 7)
        )
        assert config.failure_point_window == (3, 7)


# ----------------------------------------------------------------------
# Job/shard state machine
# ----------------------------------------------------------------------


class TestJobRecord:
    def _record(self):
        return JobRecord(job_id="j1")

    def test_happy_path(self):
        record = self._record()
        record.advance("RUNNING")
        record.advance("DONE")
        assert record.finished

    def test_illegal_transition_refused(self):
        record = self._record()
        with pytest.raises(StateError):
            record.advance("DONE")  # PENDING cannot jump to DONE

    def test_terminal_is_terminal(self):
        record = self._record()
        record.advance("RUNNING")
        record.advance("FAILED", "boom")
        with pytest.raises(StateError):
            record.advance("RUNNING")

    def test_degraded_can_finish(self):
        record = self._record()
        record.advance("RUNNING")
        record.advance("DEGRADED", "shard 1 abandoned")
        assert not record.finished
        record.finalize_degraded()
        assert record.finished and record.state == "DEGRADED"

    def test_shards_settled(self):
        record = self._record()
        assert not record.shards_settled()  # no shards yet
        record.shards = [
            ShardRecord(shard_id=0, lo=0, hi=4, points=4,
                        status="done"),
            ShardRecord(shard_id=1, lo=4, hi=8, points=4,
                        status="abandoned"),
        ]
        assert record.shards_settled()
        record.shards[1].status = "running"
        assert not record.shards_settled()

    def test_roundtrip(self):
        record = self._record()
        record.advance("RUNNING")
        record.planned_points = 7
        record.shards = [
            ShardRecord(shard_id=0, lo=0, hi=7, points=7,
                        status="done", attempts=2, reclaims=1,
                        summary={"bugs": 3}),
        ]
        again = JobRecord.from_dict(record.to_dict())
        assert again.to_dict() == record.to_dict()
        assert again.shard(0).summary == {"bugs": 3}


class TestJobStore:
    def test_create_load_list(self, tmp_path):
        store = JobStore(str(tmp_path))
        spec = JobSpec(workload="btree", test_size=2)
        record = store.create(spec)
        assert store.list_jobs() == [record.job_id]
        assert store.load(record.job_id).state == "PENDING"
        assert store.load_spec(record.job_id) == spec

    def test_job_ids_unique(self, tmp_path):
        store = JobStore(str(tmp_path))
        spec = JobSpec(workload="btree")
        ids = {store.create(spec).job_id for _ in range(3)}
        assert len(ids) == 3


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------


class TestPlanShards:
    def test_contiguous_cover(self):
        ranges = plan_shards(list(range(10)), 3)
        assert ranges == [(0, 4, 4), (4, 8, 4), (8, 10, 2)]

    def test_more_shards_than_points(self):
        ranges = plan_shards([0, 1], 5)
        assert ranges == [(0, 1, 1), (1, 2, 1)]

    def test_sparse_fids(self):
        # Failure points pruned by plans leave holes; ranges follow
        # the surviving fids, not the dense numbering.
        ranges = plan_shards([2, 3, 9, 12], 2)
        assert ranges == [(2, 4, 2), (9, 13, 2)]
        assert sum(points for _lo, _hi, points in ranges) == 4

    def test_empty(self):
        assert plan_shards([], 4) == []


# ----------------------------------------------------------------------
# Journal merging
# ----------------------------------------------------------------------


def _write_journal(path, checksum, fids):
    with open(path, "w") as handle:
        handle.write(json.dumps({
            "type": "header", "version": 1, "checksum": checksum,
            "workload": "w",
        }) + "\n")
        for fid in fids:
            handle.write(json.dumps({
                "type": "post", "fid": fid, "variant": None,
                "bugs": [], "benign_races": 0, "post_events": 1,
                "recovery_crash": None,
            }) + "\n")


class TestMergeShardJournals:
    def test_merges_disjoint_shards(self, tmp_path):
        a = str(tmp_path / "a.journal")
        b = str(tmp_path / "b.journal")
        merged = str(tmp_path / "merged.journal")
        _write_journal(a, "c" * 64, [0, 1])
        _write_journal(b, "c" * 64, [2, 3])
        count, skipped = merge_shard_journals([a, b], merged)
        assert (count, skipped) == (4, [])
        header, posts = read_journal_records(merged)
        assert header["checksum"] == "c" * 64
        assert sorted(fid for fid, _variant in posts) == [0, 1, 2, 3]

    def test_keeps_prior_merged_progress(self, tmp_path):
        a = str(tmp_path / "a.journal")
        merged = str(tmp_path / "merged.journal")
        _write_journal(a, "c" * 64, [0])
        _write_journal(merged, "c" * 64, [5])
        count, _skipped = merge_shard_journals([a], merged)
        assert count == 2
        _header, posts = read_journal_records(merged)
        assert sorted(fid for fid, _variant in posts) == [0, 5]

    def test_mismatched_checksum_skipped(self, tmp_path):
        a = str(tmp_path / "a.journal")
        b = str(tmp_path / "b.journal")
        merged = str(tmp_path / "merged.journal")
        _write_journal(a, "c" * 64, [0])
        _write_journal(b, "d" * 64, [1])
        count, skipped = merge_shard_journals([a, b], merged)
        assert count == 1
        assert skipped == [b]

    def test_torn_tail_tolerated(self, tmp_path):
        a = str(tmp_path / "a.journal")
        merged = str(tmp_path / "merged.journal")
        _write_journal(a, "c" * 64, [0, 1])
        with open(a, "a") as handle:
            handle.write('{"type": "post", "fid": 2')  # SIGKILL here
        count, skipped = merge_shard_journals([a], merged)
        assert (count, skipped) == (2, [])

    def test_unreadable_journal_skipped(self, tmp_path):
        a = str(tmp_path / "a.journal")
        merged = str(tmp_path / "merged.journal")
        with open(a, "w") as handle:
            handle.write("not a journal\n")
        count, skipped = merge_shard_journals([a], merged)
        assert count == 0
        assert skipped == [a]
        assert not os.path.exists(merged)

    def test_missing_files_ignored(self, tmp_path):
        merged = str(tmp_path / "merged.journal")
        count, skipped = merge_shard_journals(
            [str(tmp_path / "never-ran.journal")], merged
        )
        assert (count, skipped) == (0, [])


# ----------------------------------------------------------------------
# Reaper policy
# ----------------------------------------------------------------------


class TestReaper:
    def _reaper(self, now, **kwargs):
        clock = lambda: now[0]  # noqa: E731 — mutable fake clock
        kwargs.setdefault("heartbeat_timeout", 10.0)
        return Reaper(clock=clock, **kwargs)

    def test_fresh_heartbeat_not_stale(self, tmp_path):
        now = [1000.0]
        reaper = self._reaper(now)
        hb = str(tmp_path / "hb")
        with open(hb, "w") as handle:
            handle.write("{}")
        os.utime(hb, (now[0] - 1, now[0] - 1))
        assert not reaper.is_stale(hb, dispatched_at=now[0] - 60)

    def test_silent_shard_judged_from_dispatch(self, tmp_path):
        now = [1000.0]
        reaper = self._reaper(now)
        missing = str(tmp_path / "never-written")
        assert not reaper.is_stale(missing, dispatched_at=now[0] - 5)
        assert reaper.is_stale(missing, dispatched_at=now[0] - 11)

    def test_wall_timeout_beats_heartbeats(self, tmp_path):
        now = [1000.0]
        reaper = self._reaper(now, shard_timeout=30.0)
        hb = str(tmp_path / "hb")
        with open(hb, "w") as handle:
            handle.write("{}")
        os.utime(hb, (now[0], now[0]))  # beating right now
        assert reaper.is_stale(hb, dispatched_at=now[0] - 31)

    def test_reclaim_backoff_grows_and_caps(self):
        now = [0.0]
        reaper = self._reaper(now, max_shard_retries=50,
                              backoff_base=0.5)
        shard = ShardRecord(shard_id=0, lo=0, hi=4, points=4,
                            status="running")
        delays = []
        for _ in range(8):
            assert reaper.reclaim(shard) == "requeued"
            delays.append(shard.eligible_at - now[0])
            shard.status = "running"
        bases = [
            delay / (1.0 + jitter_unit(0, attempt + 1, 0))
            for attempt, delay in enumerate(delays)
        ]
        assert bases[0] == pytest.approx(0.5)
        assert bases[1] == pytest.approx(1.0)
        assert bases[7] == pytest.approx(30.0)  # capped

    def test_budget_exhaustion_abandons(self):
        now = [0.0]
        reaper = self._reaper(now, max_shard_retries=2)
        shard = ShardRecord(shard_id=1, lo=0, hi=4, points=4,
                            status="running")
        assert reaper.reclaim(shard) == "requeued"
        assert reaper.reclaim(shard) == "requeued"
        assert reaper.reclaim(shard) == "abandoned"
        assert shard.status == "abandoned"

    def test_reclaims_do_not_count_dispatch_attempts(self):
        now = [0.0]
        reaper = self._reaper(now)
        shard = ShardRecord(shard_id=0, lo=0, hi=4, points=4,
                            status="running", attempts=3)
        reaper.reclaim(shard)
        assert shard.attempts == 3
        assert shard.reclaims == 1


# ----------------------------------------------------------------------
# Journal fsync knobs (satellite)
# ----------------------------------------------------------------------


class TestJournalFsync:
    def _journal(self, tmp_path, monkeypatch, **kwargs):
        calls = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        journal = RunJournal(str(tmp_path / "r.journal"), **kwargs)
        journal.begin("e" * 64, "w")
        return journal, calls

    def _post(self, journal, fid):
        journal.record_post(
            fid, None, events=1, has_roi=False, crash_repr=None,
            bugs=[], benign_races=0,
        )

    def test_default_no_fsync(self, tmp_path, monkeypatch):
        journal, calls = self._journal(tmp_path, monkeypatch)
        self._post(journal, 0)
        journal.close()
        assert calls == []

    def test_fsync_every_record(self, tmp_path, monkeypatch):
        journal, calls = self._journal(
            tmp_path, monkeypatch, fsync=True
        )
        before = len(calls)  # header write syncs too
        assert before >= 1
        self._post(journal, 0)
        self._post(journal, 1)
        assert len(calls) == before + 2
        journal.close()

    def test_fsync_batching(self, tmp_path, monkeypatch):
        journal, calls = self._journal(
            tmp_path, monkeypatch, fsync=True, fsync_batch=3
        )
        start = len(calls)
        for fid in range(4):
            self._post(journal, fid)
        # header + 4 posts at batch 3: one sync at the 3rd record;
        # the 2 pending records sync on close.
        assert len(calls) == start + 1
        journal.close()
        assert len(calls) == start + 2

    def test_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XFD_JOURNAL_FSYNC", "1")
        monkeypatch.setenv("XFD_JOURNAL_FSYNC_BATCH", "7")
        config = DetectorConfig()
        assert config.journal_fsync is True
        assert config.journal_fsync_batch == 7

    def test_from_config_wires_knobs(self, tmp_path):
        config = DetectorConfig(
            journal=str(tmp_path / "j.journal"),
            journal_fsync=True, journal_fsync_batch=4,
        )
        journal = RunJournal.from_config(config)
        assert journal.fsync is True
        assert journal.fsync_batch == 4
        journal.close()


# ----------------------------------------------------------------------
# Deterministic retry jitter (satellite)
# ----------------------------------------------------------------------


class TestRetryJitter:
    def test_unit_range_and_determinism(self):
        seen = set()
        for fid in range(50):
            for attempt in (1, 2, 3):
                u = jitter_unit(fid, attempt, salt=7)
                assert 0.0 <= u < 1.0
                assert u == jitter_unit(fid, attempt, salt=7)
                seen.add(round(u, 6))
        assert len(seen) > 100  # actually spreads

    def test_salt_decorrelates(self):
        a = [jitter_unit(fid, 1, salt=1) for fid in range(20)]
        b = [jitter_unit(fid, 1, salt=2) for fid in range(20)]
        assert a != b

    def _slept(self, generation, pending, **config_kwargs):
        from repro.resilience import IncidentLog

        delays = []
        supervisor = PhaseSupervisor(
            "post_exec", DetectorConfig(**config_kwargs),
            IncidentLog(), sleep=delays.append,
        )
        supervisor._backoff(generation, pending)
        return delays

    def test_backoff_applies_jitter(self):
        pending = [(3, None, None)]
        (plain,) = self._slept(
            1, pending, retry_backoff=1.0, retry_jitter=0.0
        )
        (spread,) = self._slept(
            1, pending, retry_backoff=1.0, retry_jitter=0.5
        )
        expected = plain * (1.0 + 0.5 * jitter_unit(3, 1, 0))
        assert spread == pytest.approx(expected)
        assert spread >= plain

    def test_salted_supervisors_desynchronize(self):
        pending = [(3, None, None)]
        delays = {
            salt: self._slept(
                1, pending, retry_backoff=1.0, retry_jitter=0.5,
                retry_jitter_salt=salt,
            )[0]
            for salt in (1, 2)
        }
        assert delays[1] != delays[2]

    def test_zero_backoff_never_sleeps(self):
        assert self._slept(
            1, [(0, None, None)],
            retry_backoff=0.0, retry_jitter=0.5,
        ) == []


# ----------------------------------------------------------------------
# Checksum driver-independence
# ----------------------------------------------------------------------


class TestChecksumDigestIp:
    def test_workload_frames_digested(self):
        from repro._location import SourceLocation

        ip = SourceLocation(
            "/x/src/repro/workloads/btree.py", 42, "insert"
        )
        assert _digest_ip(ip) == "btree.py:42:insert"

    def test_driver_frames_normalized(self):
        from repro._location import UNKNOWN_LOCATION, SourceLocation

        for ip in (
            SourceLocation("/x/src/repro/service/shard.py", 199,
                           "run_shard"),
            SourceLocation("<stdin>", 3, "<module>"),
            SourceLocation("/usr/lib/python3.11/contextlib.py", 137,
                           "__enter__"),
            UNKNOWN_LOCATION,
        ):
            assert _digest_ip(ip) == "<engine>"


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------


class TestHeartbeatSink:
    class _Event:
        def __init__(self, kind, **data):
            self.kind = kind
            self.ts = 1.0
            self.data = data

    def test_writes_on_beat_kinds_only(self, tmp_path):
        path = str(tmp_path / "hb")
        sink = HeartbeatSink(path)
        sink.handle(self._Event("point_started", fid=1))
        assert not os.path.exists(path)
        sink.handle(self._Event("heartbeat", done=3, total=9))
        assert sink.beats == 1
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["kind"] == "heartbeat"
        assert payload["data"] == {"done": 3, "total": 9}

    def test_non_scalar_data_dropped(self, tmp_path):
        path = str(tmp_path / "hb")
        sink = HeartbeatSink(path)
        sink.handle(self._Event(
            "heartbeat", done=1, stats={"nested": True}
        ))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["data"] == {"done": 1}

    def test_mtime_advances(self, tmp_path):
        path = str(tmp_path / "hb")
        sink = HeartbeatSink(path)
        sink.handle(self._Event("heartbeat"))
        os.utime(path, (1.0, 1.0))
        sink.handle(self._Event("heartbeat"))
        assert os.stat(path).st_mtime > 1.0


# ----------------------------------------------------------------------
# Doctor
# ----------------------------------------------------------------------


class TestDoctor:
    def test_finished_job_litter_found_and_cleaned(self, tmp_path):
        from repro.service.doctor import clean_findings, diagnose

        store = JobStore(str(tmp_path))
        record = store.create(JobSpec(workload="btree"))
        record.advance("RUNNING")
        record.advance("DONE")
        store.save(record)
        shard_path = store.shard_journal_path(record.job_id, 0)
        _write_journal(shard_path, "c" * 64, [0])
        report_path = store.report_path(record.job_id, "text")
        with open(report_path, "w") as handle:
            handle.write("report\n")

        findings = diagnose(str(tmp_path))
        litter = [f for f in findings if f["kind"] == "job_litter"]
        assert [f["path"] for f in litter] == [shard_path]

        removed, kept = clean_findings(findings)
        assert not os.path.exists(shard_path)
        assert os.path.exists(report_path)  # reports are sacred
        assert [f["path"] for f in removed] == [shard_path]

    def test_unfinished_job_untouched(self, tmp_path):
        from repro.service.doctor import diagnose

        store = JobStore(str(tmp_path))
        record = store.create(JobSpec(workload="btree"))
        record.advance("RUNNING")
        store.save(record)
        shard_path = store.shard_journal_path(record.job_id, 0)
        _write_journal(shard_path, "c" * 64, [0])
        findings = diagnose(str(tmp_path))
        assert not any(
            f["kind"] == "job_litter" for f in findings
        )
        resumable = [
            f for f in findings if f["kind"] == "resumable_job"
        ]
        assert [f["job"] for f in resumable] == [record.job_id]

    def test_stale_daemon_detected(self, tmp_path):
        from repro.service.doctor import clean_findings, diagnose
        from repro.service.jobstore import atomic_write_json

        store = JobStore(str(tmp_path))
        atomic_write_json(store.daemon_path(), {
            "state": "serving", "pid": 2 ** 22 + 12345,
            "host": "127.0.0.1", "port": 1,
            "url": "http://127.0.0.1:1",
        })
        findings = diagnose(str(tmp_path))
        stale = [f for f in findings if f["kind"] == "stale_daemon"]
        assert len(stale) == 1
        clean_findings(findings)
        assert not os.path.exists(store.daemon_path())

    def test_live_daemon_not_stale(self, tmp_path):
        from repro.service.doctor import diagnose
        from repro.service.jobstore import atomic_write_json

        store = JobStore(str(tmp_path))
        atomic_write_json(store.daemon_path(), {
            "state": "serving", "pid": os.getpid(),
            "host": "127.0.0.1", "port": 1,
            "url": "http://127.0.0.1:1",
        })
        assert not any(
            f["kind"] == "stale_daemon"
            for f in diagnose(str(tmp_path))
        )

    def test_orphan_job_dir_reported_not_cleaned(self, tmp_path):
        from repro.service.doctor import clean_findings, diagnose

        store = JobStore(str(tmp_path))
        orphan = os.path.join(store.root, "jobs", "half-created")
        os.makedirs(orphan)
        findings = diagnose(str(tmp_path))
        assert any(
            f["kind"] == "orphan_job_dir" for f in findings
        )
        clean_findings(findings)
        assert os.path.isdir(orphan)  # needs a human
