"""Tests for the shadow PM: persistence FSM, consistency FSM (Figure
10), the commit-variable rule (Eq. 3 via epochs), and forking."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._location import SourceLocation
from repro.core.shadow import (
    CommitVariable,
    ConsistencyState,
    PersistenceState,
    ShadowPM,
)
from repro.pm.constants import CACHE_LINE_SIZE

IP = SourceLocation("w.py", 1, "writer")


def persisted(shadow, addr, size=8):
    """Drive addr through store->flush->fence."""
    shadow.record_store(addr, size, IP, "pre")
    shadow.record_flush(addr - addr % CACHE_LINE_SIZE)
    shadow.record_fence()


class TestPersistenceStates:
    def test_store_flush_fence_cycle(self):
        shadow = ShadowPM()
        shadow.record_store(0x100, 8, IP, "pre")
        assert shadow.persistence_at(0x100) is PersistenceState.MODIFIED
        assert shadow.record_flush(0x100) is True
        assert (
            shadow.persistence_at(0x100)
            is PersistenceState.WRITEBACK_PENDING
        )
        assert shadow.record_fence() is True
        assert shadow.persistence_at(0x100) is PersistenceState.PERSISTED

    def test_flush_only_affects_its_line(self):
        shadow = ShadowPM()
        shadow.record_store(0x100, 8, IP, "pre")
        shadow.record_store(0x180, 8, IP, "pre")
        shadow.record_flush(0x100)
        assert (
            shadow.persistence_at(0x180) is PersistenceState.MODIFIED
        )

    def test_redundant_flush_returns_false(self):
        shadow = ShadowPM()
        assert shadow.record_flush(0x100) is False
        shadow.record_store(0x100, 8, IP, "pre")
        shadow.record_flush(0x100)
        assert shadow.record_flush(0x100) is False

    def test_fence_without_pending_is_not_ordering_point(self):
        shadow = ShadowPM()
        assert shadow.record_fence() is False
        assert shadow.epoch == 0

    def test_epoch_increments_per_ordering_point(self):
        shadow = ShadowPM()
        persisted(shadow, 0x100)
        assert shadow.epoch == 1
        persisted(shadow, 0x200)
        assert shadow.epoch == 2

    def test_clflush_persists_and_bumps_epoch(self):
        shadow = ShadowPM()
        shadow.record_store(0x100, 8, IP, "pre")
        assert shadow.record_clflush(0x100) is True
        assert shadow.persistence_at(0x100) is PersistenceState.PERSISTED
        assert shadow.epoch == 1

    def test_nt_store_pending_until_fence(self):
        shadow = ShadowPM()
        shadow.record_nt_store(0x100, 8, IP, "pre")
        assert (
            shadow.persistence_at(0x100)
            is PersistenceState.WRITEBACK_PENDING
        )
        shadow.record_fence()
        assert shadow.persistence_at(0x100) is PersistenceState.PERSISTED

    def test_writer_ip_recorded(self):
        shadow = ShadowPM()
        shadow.record_store(0x100, 8, IP, "pre")
        assert shadow.writer.get(0x100) is IP


class TestAllocFree:
    def test_alloc_marks_uninitialized_by_default(self):
        shadow = ShadowPM()
        shadow.record_alloc(0x100, 64, zeroed=True, stage="pre",
                            trust_allocator_zeroing=False)
        assert shadow.uninitialized.get(0x100) is True
        assert shadow.persistence_at(0x100) is PersistenceState.PERSISTED

    def test_alloc_trusted_zeroing(self):
        shadow = ShadowPM()
        shadow.record_alloc(0x100, 64, zeroed=True, stage="pre",
                            trust_allocator_zeroing=True)
        assert shadow.uninitialized.get(0x100) is False

    def test_raw_alloc_uninitialized_even_when_trusting(self):
        shadow = ShadowPM()
        shadow.record_alloc(0x100, 64, zeroed=False, stage="pre",
                            trust_allocator_zeroing=True)
        assert shadow.uninitialized.get(0x100) is True

    def test_store_initializes(self):
        shadow = ShadowPM()
        shadow.record_alloc(0x100, 64, zeroed=True, stage="pre",
                            trust_allocator_zeroing=False)
        shadow.record_store(0x100, 8, IP, "pre")
        assert shadow.uninitialized.get(0x100) is False
        assert shadow.uninitialized.get(0x108) is True

    def test_post_alloc_exempt(self):
        shadow = ShadowPM()
        shadow.record_alloc(0x100, 64, zeroed=True, stage="post",
                            trust_allocator_zeroing=False)
        assert shadow.uninitialized.get(0x100) is False
        assert shadow.post_written.get(0x100) is True

    def test_free_marks_uninitialized(self):
        shadow = ShadowPM()
        shadow.record_store(0x100, 8, IP, "pre")
        shadow.record_free(0x100, 64)
        assert shadow.uninitialized.get(0x100) is True


class TestConsistencyFSM:
    """Figure 10: WRITE m -> uncommitted; commit write -> consistent or
    stale depending on when m was last written (Eq. 3 via epochs)."""

    def make_annotated(self):
        shadow = ShadowPM()
        shadow.register_commit_var("valid", 0x10, 8)
        shadow.register_commit_range("valid", 0x100, 16)
        return shadow

    def test_member_store_goes_uncommitted(self):
        shadow = self.make_annotated()
        shadow.record_store(0x100, 8, IP, "pre")
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.UNCOMMITTED
        )

    def test_non_member_store_stays_consistent(self):
        shadow = self.make_annotated()
        shadow.record_store(0x500, 8, IP, "pre")
        assert (
            shadow.consistency_at(0x500) is ConsistencyState.CONSISTENT
        )

    def test_commit_in_same_epoch_leaves_state(self):
        """Figure 11: 'no update before the commit timestamp' — a member
        written in the same epoch as the commit write stays IC."""
        shadow = self.make_annotated()
        shadow.record_store(0x100, 8, IP, "pre")  # epoch 0
        shadow.record_store(0x10, 8, IP, "pre")  # commit write, epoch 0
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.UNCOMMITTED
        )

    def test_commit_after_persist_makes_consistent(self):
        shadow = self.make_annotated()
        shadow.record_store(0x100, 8, IP, "pre")  # epoch 0
        shadow.record_flush(0x100)
        shadow.record_fence()  # epoch 1
        shadow.record_store(0x10, 8, IP, "pre")  # commit @ epoch 1
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.CONSISTENT
        )

    def test_second_commit_without_rewrite_goes_stale(self):
        shadow = self.make_annotated()
        persisted(shadow, 0x100)  # member persisted, epoch 1
        shadow.record_store(0x10, 8, IP, "pre")  # commit #1
        persisted(shadow, 0x10)  # epoch 2
        shadow.record_store(0x10, 8, IP, "pre")  # commit #2
        assert shadow.consistency_at(0x100) is ConsistencyState.STALE

    def test_rewrite_between_commits_stays_consistent(self):
        shadow = self.make_annotated()
        persisted(shadow, 0x100)
        shadow.record_store(0x10, 8, IP, "pre")  # commit #1
        persisted(shadow, 0x10)
        persisted(shadow, 0x100)  # member rewritten + persisted
        shadow.record_store(0x10, 8, IP, "pre")  # commit #2
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.CONSISTENT
        )

    def test_stale_then_rewritten_becomes_uncommitted(self):
        shadow = self.make_annotated()
        persisted(shadow, 0x100)
        shadow.record_store(0x10, 8, IP, "pre")
        persisted(shadow, 0x10)
        shadow.record_store(0x10, 8, IP, "pre")  # member now stale
        shadow.record_store(0x100, 8, IP, "pre")
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.UNCOMMITTED
        )

    def test_post_store_is_consistent_and_exempt(self):
        shadow = self.make_annotated()
        shadow.record_store(0x100, 8, IP, "post")
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.CONSISTENT
        )
        assert shadow.post_written.get(0x100) is True

    def test_single_var_without_ranges_covers_all(self):
        shadow = ShadowPM()
        shadow.register_commit_var("only", 0x10, 8)
        shadow.record_store(0x900, 8, IP, "pre")
        assert (
            shadow.consistency_at(0x900) is ConsistencyState.UNCOMMITTED
        )

    def test_multiple_vars_without_ranges_cover_nothing(self):
        shadow = ShadowPM()
        shadow.register_commit_var("a", 0x10, 8)
        shadow.register_commit_var("b", 0x20, 8)
        shadow.record_store(0x900, 8, IP, "pre")
        assert (
            shadow.consistency_at(0x900) is ConsistencyState.CONSISTENT
        )

    def test_commit_var_covering(self):
        shadow = self.make_annotated()
        assert shadow.commit_var_covering(0x10, 0x18).name == "valid"
        assert shadow.commit_var_covering(0x100, 0x108) is None

    def test_unknown_commit_range_rejected(self):
        import pytest

        shadow = ShadowPM()
        with pytest.raises(KeyError):
            shadow.register_commit_range("ghost", 0, 8)


class TestTxSemantics:
    def test_tx_add_marks_consistent_persisted(self):
        shadow = ShadowPM()
        shadow.record_store(0x100, 8, IP, "pre")
        shadow.record_tx_add(0x100, 8, IP)
        assert shadow.persistence_at(0x100) is PersistenceState.PERSISTED
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.CONSISTENT
        )

    def test_in_tx_store_to_added_range_stays_consistent(self):
        shadow = ShadowPM()
        shadow.record_tx_add(0x100, 8, IP)
        shadow.record_store(0x100, 8, IP, "pre",
                            tx_added=[(0x100, 8)], in_tx=True)
        assert (
            shadow.consistency_at(0x100) is ConsistencyState.CONSISTENT
        )
        assert shadow.persistence_at(0x100) is PersistenceState.MODIFIED

    def test_in_tx_store_outside_added_goes_uncommitted(self):
        shadow = ShadowPM()
        shadow.record_store(0x200, 8, IP, "pre",
                            tx_added=[(0x100, 8)], in_tx=True)
        assert (
            shadow.consistency_at(0x200) is ConsistencyState.UNCOMMITTED
        )

    def test_commit_tx_writes_clears_uncommitted_only(self):
        shadow = ShadowPM()
        shadow.record_store(0x200, 8, IP, "pre", tx_added=[],
                            in_tx=True)
        shadow.register_commit_var("v", 0x10, 8)
        shadow.register_commit_range("v", 0x300, 8)
        persisted(shadow, 0x300)
        shadow.record_store(0x10, 8, IP, "pre")
        persisted(shadow, 0x10)
        shadow.record_store(0x10, 8, IP, "pre")  # 0x300 now stale
        shadow.commit_tx_writes([(0x200, 8), (0x300, 8)])
        assert (
            shadow.consistency_at(0x200) is ConsistencyState.CONSISTENT
        )
        assert shadow.consistency_at(0x300) is ConsistencyState.STALE


class TestCopy:
    def test_copy_is_deep(self):
        shadow = ShadowPM()
        shadow.register_commit_var("v", 0x10, 8)
        shadow.record_store(0x100, 8, IP, "pre")
        fork = shadow.copy()
        fork.record_store(0x200, 8, IP, "pre")
        fork.record_flush(0x100)
        fork.record_fence()
        fork.commit_vars["v"].last_commit_epoch = 99
        assert shadow.persistence_at(0x200) is PersistenceState.UNMODIFIED
        assert shadow.persistence_at(0x100) is PersistenceState.MODIFIED
        assert shadow.commit_vars["v"].last_commit_epoch is None
        assert fork.epoch == shadow.epoch + 1


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.sampled_from(["store", "flush", "fence", "commit"]),
        max_size=50,
    )
)
def test_consistency_fsm_matches_reference_model(ops):
    """Double-entry check of the commit rule: an independent reference
    implementation of 'member consistent iff last written strictly
    between the last two commit-write epochs' (Eq. 3, with same-epoch
    writes left unchanged) must agree with the shadow PM."""
    shadow = ShadowPM()
    shadow.register_commit_var("v", 0x0, 8)
    shadow.register_commit_range("v", 0x100, 8)

    ref_state = ConsistencyState.CONSISTENT
    ref_tlast = None
    last_commit = None

    for op in ops:
        if op == "store":
            shadow.record_store(0x100, 8, IP, "pre")
            ref_state = ConsistencyState.UNCOMMITTED
            ref_tlast = shadow.epoch
        elif op == "flush":
            shadow.record_flush(0x100)
            shadow.record_flush(0x0)
        elif op == "fence":
            shadow.record_fence()
        else:
            now = shadow.epoch
            lower = last_commit if last_commit is not None else -1
            shadow.record_store(0x0, 8, IP, "pre")
            if ref_tlast is not None and ref_tlast != now:
                if lower < ref_tlast < now:
                    ref_state = ConsistencyState.CONSISTENT
                elif (
                    ref_tlast <= lower
                    and ref_state is ConsistencyState.CONSISTENT
                ):
                    ref_state = ConsistencyState.STALE
            last_commit = now
        assert shadow.consistency_at(0x100) is ref_state
        assert shadow.tlast.get(0x100) == ref_tlast
