"""Differential property test: fast-path ShadowPM vs the reference FSM.

``repro.core.shadow.ShadowPM`` carries several hot-path optimizations —
store coalescing, slotted classes, generation-counted memoized lookups —
that must be *observationally invisible*.  This test drives identical
randomized operation sequences (stores, non-temporal stores, flushes,
fences, transactions, allocations, commit-variable writes) through the
optimized implementation and through
:class:`repro.core.shadow_ref.ReferenceShadowPM`, the retained
straight-line Figure 9 / Figure 10 implementation, and asserts
byte-identical persistence and consistency verdicts throughout.
"""

import random

import pytest

from repro._location import SourceLocation
from repro.core.shadow import ShadowPM
from repro.core.shadow_ref import ReferenceShadowPM
from repro.pm.cacheline import PlatformMode
from repro.pm.constants import CACHE_LINE_SIZE

BASE = 0x10000000
SPAN = 16 * CACHE_LINE_SIZE

_IPS = [
    SourceLocation("wl.py", n, "op") for n in range(1, 6)
]


def _verdicts(shadow, stride=1):
    return [
        (shadow.persistence_at(addr), shadow.consistency_at(addr))
        for addr in range(BASE, BASE + SPAN, stride)
    ]


class _Driver:
    """Applies one random operation to both implementations."""

    def __init__(self, rng, fast, ref):
        self.rng = rng
        self.pair = (fast, ref)
        self.in_tx = False
        self.tx_added = []
        self.tx_writes = []

    def _range(self):
        rng = self.rng
        size = rng.choice([1, 4, 8, 16, 64, 128])
        addr = BASE + rng.randrange(0, SPAN - size)
        return addr, size

    def _line(self):
        return BASE + self.rng.randrange(0, SPAN // CACHE_LINE_SIZE) \
            * CACHE_LINE_SIZE

    def step(self):
        op = self.rng.choice(
            ["store"] * 6 + ["nt_store"] * 2 + ["flush"] * 3
            + ["clflush", "fence", "fence", "tx", "alloc", "free",
               "post_store"]
        )
        getattr(self, "_do_" + op)()

    def _do_store(self):
        addr, size = self._range()
        ip = self.rng.choice(_IPS)
        for shadow in self.pair:
            shadow.record_store(
                addr, size, ip, "pre",
                tx_added=self.tx_added if self.in_tx else None,
                in_tx=self.in_tx,
            )
        if self.in_tx:
            self.tx_writes.append((addr, size))

    def _do_post_store(self):
        addr, size = self._range()
        ip = self.rng.choice(_IPS)
        for shadow in self.pair:
            shadow.record_store(addr, size, ip, "post")

    def _do_nt_store(self):
        addr, size = self._range()
        ip = self.rng.choice(_IPS)
        for shadow in self.pair:
            shadow.record_nt_store(
                addr, size, ip, "pre",
                tx_added=self.tx_added if self.in_tx else None,
                in_tx=self.in_tx,
            )
        if self.in_tx:
            self.tx_writes.append((addr, size))

    def _do_flush(self):
        line = self._line()
        for shadow in self.pair:
            shadow.record_flush(line)

    def _do_clflush(self):
        line = self._line()
        for shadow in self.pair:
            shadow.record_clflush(line)

    def _do_fence(self):
        for shadow in self.pair:
            shadow.record_fence()

    def _do_tx(self):
        if not self.in_tx:
            self.in_tx = True
            self.tx_added = []
            self.tx_writes = []
            for _ in range(self.rng.randrange(0, 3)):
                addr, size = self._range()
                self.tx_added.append((addr, size))
                ip = self.rng.choice(_IPS)
                for shadow in self.pair:
                    shadow.record_tx_add(addr, size, ip)
        else:
            for shadow in self.pair:
                shadow.commit_tx_writes(self.tx_writes)
            self.in_tx = False
            self.tx_added = []
            self.tx_writes = []

    def _do_alloc(self):
        addr, size = self._range()
        zeroed = self.rng.random() < 0.5
        for shadow in self.pair:
            shadow.record_alloc(addr, size, zeroed, "pre", True)

    def _do_free(self):
        addr, size = self._range()
        for shadow in self.pair:
            shadow.record_free(addr, size)


def _run_differential(seed, platform, commit_vars, steps=250):
    rng = random.Random(seed)
    fast = ShadowPM(platform=platform)
    ref = ReferenceShadowPM(platform=platform)
    for index in range(commit_vars):
        start = BASE + index * 4 * CACHE_LINE_SIZE
        name = f"flag{index}"
        for shadow in (fast, ref):
            shadow.register_commit_var(name, start, 8)
            shadow.register_commit_range(
                name, start + CACHE_LINE_SIZE, 2 * CACHE_LINE_SIZE
            )
    driver = _Driver(rng, fast, ref)
    for step in range(steps):
        driver.step()
        # Sampled comparison every step, full-resolution sweep at the
        # end: the memo/coalescing bugs this hunts are not transient,
        # but catching the first divergent step aids debugging.
        stride = 8 if step < steps - 1 else 1
        assert _verdicts(fast, stride) == _verdicts(ref, stride), (
            f"divergence after step {step} (seed={seed}, "
            f"platform={platform}, commit_vars={commit_vars})"
        )


class TestShadowDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_adr_no_commit_vars(self, seed):
        _run_differential(seed, PlatformMode.ADR, commit_vars=0)

    @pytest.mark.parametrize("seed", range(6))
    def test_adr_with_commit_vars(self, seed):
        _run_differential(seed + 100, PlatformMode.ADR, commit_vars=2)

    @pytest.mark.parametrize("seed", range(3))
    def test_eadr(self, seed):
        _run_differential(seed + 200, PlatformMode.EADR, commit_vars=1)

    def test_repeated_identical_stores_coalesce_invisibly(self):
        """The exact shape the coalescing fast path targets: the same
        store reissued back-to-back must leave both FSMs identical."""
        fast = ShadowPM()
        ref = ReferenceShadowPM()
        ip = _IPS[0]
        for shadow in (fast, ref):
            for _ in range(5):
                shadow.record_store(BASE, 8, ip, "pre")
            shadow.record_flush(BASE)
            for _ in range(3):
                shadow.record_store(BASE + 64, 8, ip, "pre")
            shadow.record_fence()
        assert _verdicts(fast) == _verdicts(ref)

    def test_memoized_lookups_see_mutations(self):
        """persistence_at/consistency_at memos must invalidate on every
        mutating transition, not only on stores."""
        fast = ShadowPM()
        ref = ReferenceShadowPM()
        ip = _IPS[0]
        for shadow in (fast, ref):
            shadow.record_store(BASE, 8, ip, "pre")
        assert _verdicts(fast) == _verdicts(ref)
        for shadow in (fast, ref):
            shadow.record_flush(BASE)
        assert _verdicts(fast) == _verdicts(ref)
        for shadow in (fast, ref):
            shadow.record_fence()
        assert _verdicts(fast) == _verdicts(ref)
