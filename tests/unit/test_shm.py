"""Shared-memory snapshot publication (repro.exec.shm).

Round trip: a store published into a segment and re-attached must be
indistinguishable from the original for everything the post-failure
stage reads — materialized images, volatile bits, and the memo's
cursor walk.  Lifecycle: every created segment must be unlinked by
``plane.close()`` (the integration suite covers quarantine and chaos
death; this file covers the mechanics).
"""

import pickle

import pytest

from repro.dedup.memo import ImageMemo
from repro.errors import DetectorError
from repro.exec.shm import ShmSnapshotPlane, ShmStoreView, live_segments
from repro.pm.image import PMImage
from repro.pm.snapshot import PoolDelta, SnapshotStore


def _make_store():
    """A two-pool store with a full-image snapshot followed by two
    line-delta snapshots — the shapes the pre-failure stage records."""
    store = SnapshotStore()
    store.capture_full([
        PMImage("heap", 0x1000, b"A" * 256, b"a" * 256,
                volatile_lines=(0, 64)),
        PMImage("log", 0x4000, b"B" * 128, b"b" * 128),
    ])
    store._snapshots.append([
        PoolDelta("heap", 0x1000, 256,
                  lines=[(64, b"X" * 64, b"x" * 64)],
                  volatile_lines=(64,)),
        PoolDelta("log", 0x4000, 128,
                  lines=[(0, b"Y" * 64, b"y" * 64)]),
    ])
    store._records.append(None)
    store._snapshots.append([
        PoolDelta("heap", 0x1000, 256,
                  lines=[(0, b"Z" * 64, b"z" * 64),
                         (192, b"W" * 64, b"w" * 64)],
                  volatile_lines=(0, 192)),
        PoolDelta("log", 0x4000, 128, lines=[]),
    ])
    store._records.append(None)
    # The hand-appended deltas bypass capture(); keep the accounting
    # consistent so the attached mirror can reproduce it.
    for deltas in store._snapshots[1:]:
        for delta in deltas:
            store.recorded_bytes += delta.recorded_bytes
            store.full_equivalent_bytes += 2 * delta.size
    return store


@pytest.fixture
def plane():
    plane = ShmSnapshotPlane()
    yield plane
    plane.close()


def _images_by_pool(store, fid):
    return {
        image.pool_name: image for image in store.materialize(fid)
    }


class TestRoundTrip:
    def test_materialize_matches_across_all_fids(self, plane):
        store = _make_store()
        attached = plane.publish(store).attach()
        for fid in range(len(store)):
            source = _images_by_pool(store, fid)
            mirror = _images_by_pool(attached, fid)
            assert source.keys() == mirror.keys()
            for name, image in source.items():
                assert mirror[name].data == image.data
                assert mirror[name].persisted_data == \
                    image.persisted_data
                assert mirror[name].volatile_lines == \
                    image.volatile_lines
                assert mirror[name].base == image.base

    def test_backwards_walk_rebuilds_from_base(self, plane):
        store = _make_store()
        attached = plane.publish(store).attach()
        last = _images_by_pool(attached, 2)["heap"].data
        first = _images_by_pool(attached, 0)["heap"].data
        assert first == b"A" * 256
        assert last != first

    def test_volatile_bits_match(self, plane):
        store = _make_store()
        attached = plane.publish(store).attach()
        for fid in range(len(store)):
            assert attached.volatile_bits(fid) == \
                store.volatile_bits(fid)

    def test_memo_cursor_walks_the_attached_store(self, plane):
        store = _make_store()
        attached = plane.publish(store).attach()
        source_memo = ImageMemo(store)
        mirror_memo = ImageMemo(attached)
        for fid in (0, 1, 2, 1):
            source = {
                p.name: bytes(p._data)
                for p in source_memo.task_pools(fid, None)
            }
            mirror = {
                p.name: bytes(p._data)
                for p in mirror_memo.task_pools(fid, None)
            }
            assert mirror == source

    def test_accounting_mirrors_the_source(self, plane):
        store = _make_store()
        attached = plane.publish(store).attach()
        assert len(attached) == len(store)
        assert attached.recorded_bytes == store.recorded_bytes
        assert attached.frozen

    def test_view_is_tiny_and_picklable(self, plane):
        store = _make_store()
        view = plane.publish(store)
        blob = pickle.dumps(view)
        assert len(blob) < 200
        clone = pickle.loads(blob)
        assert isinstance(clone, ShmStoreView)
        assert clone.name == view.name
        assert clone.nbytes == view.nbytes


class TestLifecycle:
    def test_publish_registers_and_close_unlinks(self):
        plane = ShmSnapshotPlane()
        view = plane.publish(_make_store())
        assert view.name in live_segments()
        plane.close()
        assert view.name not in live_segments()

    def test_publish_is_cached_by_store_identity(self, plane):
        store = _make_store()
        first = plane.publish(store)
        second = plane.publish(store)
        assert second is first
        assert len(live_segments()) == 1
        other = plane.publish(_make_store())
        assert other.name != first.name

    def test_bytes_shared_accumulates(self, plane):
        assert plane.bytes_shared == 0
        view = plane.publish(_make_store())
        assert plane.bytes_shared == view.nbytes > 0

    def test_close_is_idempotent(self):
        plane = ShmSnapshotPlane()
        plane.publish(_make_store())
        plane.close()
        plane.close()
        assert live_segments() == []

    def test_publish_freezes_the_source(self, plane):
        store = _make_store()
        plane.publish(store)
        assert store.frozen
        with pytest.raises(DetectorError):
            store.capture_full([
                PMImage("late", 0x8000, b"C" * 64, b"c" * 64)
            ])


class TestFreeze:
    def test_freeze_refuses_capture(self):
        store = _make_store()
        store.freeze()
        with pytest.raises(DetectorError):
            store.capture_full([
                PMImage("late", 0x8000, b"C" * 64, b"c" * 64)
            ])

    def test_unpickled_store_is_frozen(self):
        store = _make_store()
        clone = pickle.loads(pickle.dumps(store))
        assert clone.frozen

    def test_materialize_still_works_after_freeze(self):
        store = _make_store()
        reference = _images_by_pool(store, 1)["heap"].data
        store.freeze()
        assert _images_by_pool(store, 1)["heap"].data == reference
