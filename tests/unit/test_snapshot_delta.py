"""Delta pool snapshots (repro.pm.snapshot)."""

import pickle

from repro.pm.cacheline import FenceKind, FlushKind
from repro.pm.image import PMImage
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.pm.snapshot import SnapshotStore
from repro.trace.recorder import NullRecorder

POOL_SIZE = 4096


def _memory(size=POOL_SIZE):
    memory = PersistentMemory(NullRecorder(), capture_ips=False)
    memory.map_pool(PMPool("pool", size))
    return memory


def _images_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.pool_name == b.pool_name
        assert a.base == b.base
        assert a.data == b.data
        assert a.persisted_data == b.persisted_data
        assert a.volatile_lines == b.volatile_lines


class TestSnapshotStore:
    def _run_and_capture(self, memory, store, steps):
        """Apply each step then capture; returns the reference full
        images taken right before each delta capture."""
        references = []
        base = memory.pools[0].base
        for step in steps:
            step(memory, base)
            references.append(memory.snapshot_images())
            memory.snapshot_delta(store)
        return references

    def _steps(self):
        return [
            lambda m, b: m.store(b, b"A" * 8),
            lambda m, b: (m.flush(b, 8), m.fence(FenceKind.SFENCE)),
            lambda m, b: m.store(b + 256, b"B" * 16),
            lambda m, b: (
                m.store(b + 64, b"C" * 8),
                m.flush(b + 64, 8, FlushKind.CLFLUSH),
            ),
            lambda m, b: m.nt_store(b + 1024, b"D" * 8),
        ]

    def test_materialize_matches_full_snapshots(self):
        memory = _memory()
        store = SnapshotStore()
        references = self._run_and_capture(memory, store, self._steps())
        for fid, reference in enumerate(references):
            _images_equal(store.materialize(fid), reference)

    def test_backwards_then_forwards_materialization(self):
        memory = _memory()
        store = SnapshotStore()
        references = self._run_and_capture(memory, store, self._steps())
        # Jump to the last snapshot, then back to the first, then to a
        # middle one: the cursor must rebuild correctly every time.
        for fid in (len(references) - 1, 0, 2, 2, 1):
            _images_equal(store.materialize(fid), references[fid])

    def test_delta_saves_bytes_vs_full_copies(self):
        memory = _memory()
        store = SnapshotStore()
        self._run_and_capture(memory, store, self._steps())
        # One full base image + per-line patches afterwards.
        assert store.full_equivalent_bytes == 2 * POOL_SIZE * 5
        assert store.recorded_bytes < store.full_equivalent_bytes
        assert store.bytes_saved > 0
        assert (
            store.bytes_saved
            == store.full_equivalent_bytes - store.recorded_bytes
        )

    def test_untouched_interval_records_no_line_bytes(self):
        memory = _memory()
        store = SnapshotStore()
        memory.store(memory.pools[0].base, b"A" * 8)
        memory.snapshot_delta(store)
        before = store.recorded_bytes
        # No PM activity between captures: the delta is empty.
        memory.snapshot_delta(store)
        assert store.recorded_bytes == before
        _images_equal(store.materialize(1), store.materialize(0))

    def test_pool_mapped_mid_run_gets_full_base(self):
        memory = _memory()
        store = SnapshotStore()
        memory.store(memory.pools[0].base, b"A" * 8)
        memory.snapshot_delta(store)
        second = PMPool(
            "late", 1024, memory.pools[0].end + 4096
        )
        memory.map_pool(second)
        memory.store(second.base, b"Z" * 4)
        reference = memory.snapshot_images()
        memory.snapshot_delta(store)
        _images_equal(store.materialize(1), reference)

    def test_volatile_bits_matches_materialized_images(self):
        memory = _memory()
        store = SnapshotStore()
        base = memory.pools[0].base
        memory.store(base, b"A" * 8)          # modified line
        memory.store(base + 128, b"B" * 8)    # another modified line
        memory.snapshot_delta(store)
        images = store.materialize(0)
        assert store.volatile_bits(0) == sum(
            len(image.volatile_lines) for image in images
        )
        assert store.volatile_bits(0) == 2

    def test_variant_bytes_parity_after_materialization(self):
        memory = _memory()
        store = SnapshotStore()
        base = memory.pools[0].base
        memory.store(base, b"A" * 8)
        memory.flush(base, 8)
        memory.fence()
        memory.store(base + 64, b"B" * 8)
        reference = memory.snapshot_images()
        memory.snapshot_delta(store)
        for mask in (0, 1):
            assert (
                store.materialize(0)[0].variant_bytes(mask)
                == reference[0].variant_bytes(mask)
            )

    def test_pickle_roundtrip(self):
        memory = _memory()
        store = SnapshotStore()
        references = self._run_and_capture(memory, store, self._steps())
        clone = pickle.loads(pickle.dumps(store))
        assert clone.recorded_bytes == store.recorded_bytes
        assert clone.bytes_saved == store.bytes_saved
        for fid, reference in enumerate(references):
            _images_equal(clone.materialize(fid), reference)

    def test_capture_full_fallback(self):
        store = SnapshotStore()
        image = PMImage("p", 0x1000, b"\x01" * 64, b"\x00" * 64, (0,))
        fid = store.capture_full([image])
        assert fid == 0
        assert store.bytes_saved == 0
        out = store.materialize(0)[0]
        assert out.data == image.data
        assert out.persisted_data == image.persisted_data
        assert out.volatile_lines == (0,)

    def test_materialize_out_of_range(self):
        store = SnapshotStore()
        try:
            store.materialize(0)
        except IndexError:
            pass
        else:
            raise AssertionError("expected IndexError")
