"""Hypothesis stateful tests: the allocator and the transaction system
driven by arbitrary operation interleavings against reference models."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.pmdk import I64, ObjectPool, Struct
from repro.pmdk.pmemobj.alloc import ALLOC_ALIGN, Allocator
from repro.trace.recorder import TraceRecorder


class AllocatorMachine(RuleBasedStateMachine):
    """Arbitrary alloc/free sequences: live blocks never overlap, freed
    blocks are reusable, contents of zeroed allocations are zero."""

    @initialize()
    def setup(self):
        memory = PersistentMemory(TraceRecorder(), capture_ips=False)
        pool = memory.map_pool(PMPool("heap", size=1 << 20))
        self.memory = memory
        self.allocator = Allocator(memory, pool.base, (1 << 20) - 4096)
        self.allocator.format()
        self.live = {}  # address -> rounded size

    @rule(size=st.integers(1, 500))
    def alloc(self, size):
        address = self.allocator.alloc(size, zero=True)
        rounded = -(-size // ALLOC_ALIGN) * ALLOC_ALIGN
        assert self.memory.load(address, size) == bytes(size)
        for other, other_size in self.live.items():
            assert (
                address + rounded <= other
                or other + other_size <= address
            )
        self.live[address] = rounded

    @precondition(lambda self: self.live)
    @rule(index=st.integers(0, 10**6))
    def free(self, index):
        address = sorted(self.live)[index % len(self.live)]
        del self.live[address]
        self.allocator.free(address)

    @invariant()
    def free_list_disjoint_from_live(self):
        if not hasattr(self, "allocator"):
            return
        from repro.pmdk.pmemobj.alloc import BlockHeader

        for header_addr in self.allocator.free_list():
            user = header_addr + BlockHeader.SIZE
            assert user not in self.live


class TxRecord(Struct):
    a = I64()
    b = I64()


class TransactionMachine(RuleBasedStateMachine):
    """Arbitrary begin/write/commit/abort sequences against a plain
    dict model: committed state must always match the model."""

    @initialize()
    def setup(self):
        memory = PersistentMemory(TraceRecorder(), capture_ips=False)
        self.pool = ObjectPool.create(
            memory, "sm", "sm", root_cls=TxRecord
        )
        root = self.pool.root
        root.a = 0
        root.b = 0
        self.pool.persist(root.address, TxRecord.SIZE)
        self.committed = {"a": 0, "b": 0}
        self.pending = None
        self.tx = None

    @precondition(lambda self: self.tx is None)
    @rule()
    def begin(self):
        self.tx = self.pool.transaction()
        self.tx.__enter__()
        self.tx.add_struct(self.pool.root)
        self.pending = dict(self.committed)

    @precondition(lambda self: self.tx is not None)
    @rule(field=st.sampled_from(["a", "b"]), value=st.integers(-99, 99))
    def write(self, field, value):
        setattr(self.pool.root, field, value)
        self.pending[field] = value

    @precondition(lambda self: self.tx is not None)
    @rule()
    def commit(self):
        self.tx.__exit__(None, None, None)
        self.committed = self.pending
        self.tx = None
        self.pending = None

    @precondition(lambda self: self.tx is not None)
    @rule()
    def abort(self):
        self.tx.__exit__(RuntimeError, RuntimeError("abort"), None)
        self.tx = None
        self.pending = None

    @invariant()
    def visible_state_matches_model(self):
        if not hasattr(self, "pool"):
            return
        root = self.pool.root
        expected = self.pending if self.tx is not None else self.committed
        assert root.a == expected["a"]
        assert root.b == expected["b"]


TestAllocatorMachine = AllocatorMachine.TestCase
TestAllocatorMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
TestTransactionMachine = TransactionMachine.TestCase
TestTransactionMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
