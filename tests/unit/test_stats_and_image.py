"""Tests for trace statistics and PM image helpers."""

from repro._location import UNKNOWN_LOCATION
from repro.pm.image import CrashImageMode, PMImage
from repro.trace.events import EventKind, TraceEvent
from repro.trace.stats import analyze_trace


def make_event(seq, kind, addr=0, size=0, info="", tid=0):
    return TraceEvent(seq, kind, addr, size, info, UNKNOWN_LOCATION, tid)


class TestTraceStats:
    def test_counts_and_footprint(self):
        events = [
            make_event(0, EventKind.STORE, 0x100, 8),
            make_event(1, EventKind.STORE, 0x104, 8),  # overlaps
            make_event(2, EventKind.LOAD, 0x100, 16),
            make_event(3, EventKind.FLUSH, 0x100, 64, "CLWB"),
            make_event(4, EventKind.FENCE, info="SFENCE"),
            make_event(5, EventKind.TX_BEGIN, info="1"),
            make_event(6, EventKind.TX_ADD, 0x200, 32, "1"),
            make_event(7, EventKind.TX_COMMIT, info="1"),
            make_event(8, EventKind.FAILURE_POINT, info="0"),
            make_event(9, EventKind.HINT_FAILURE_POINT, info="x"),
        ]
        stats = analyze_trace(events)
        assert stats.events == 10
        assert stats.stored_bytes == 16
        assert stats.footprint_bytes == 12  # 0x100..0x10c distinct
        assert stats.loaded_bytes == 16
        assert stats.flushes == 1
        assert stats.fences == 1
        assert stats.transactions == 1
        assert stats.tx_added_bytes == 32
        assert stats.failure_points == 1
        assert stats.ordering_hints == 1
        assert stats.by_kind["STORE"] == 2

    def test_thread_count(self):
        events = [
            make_event(0, EventKind.STORE, 0x100, 8, tid=0),
            make_event(1, EventKind.STORE, 0x200, 8, tid=2),
        ]
        assert analyze_trace(events).threads == 2

    def test_format_mentions_everything(self):
        stats = analyze_trace(
            [make_event(0, EventKind.STORE, 0x100, 8)]
        )
        text = stats.format()
        assert "events:" in text
        assert "STORE" in text

    def test_empty_trace(self):
        stats = analyze_trace([])
        assert stats.events == 0
        assert stats.footprint_bytes == 0


class TestPMImage:
    def make(self):
        return PMImage(
            "p", 0x1000, b"N" * 192, b"O" * 192,
            volatile_lines=(0, 64, 128),
        )

    def test_bytes_for_modes(self):
        image = self.make()
        assert image.bytes_for(CrashImageMode.AS_WRITTEN) == b"N" * 192
        assert (
            image.bytes_for(CrashImageMode.PERSISTED_ONLY) == b"O" * 192
        )

    def test_bad_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            self.make().bytes_for("nope")

    def test_crash_state_count(self):
        assert self.make().crash_state_count == 8
        assert PMImage("p", 0, b"", b"").crash_state_count == 1

    def test_variant_extremes_match_modes(self):
        image = self.make()
        assert image.variant_bytes(0b111) == image.data
        assert image.variant_bytes(0b000) == image.persisted_data

    def test_variant_mixes_per_line(self):
        image = self.make()
        mixed = image.variant_bytes(0b010)
        assert mixed[0:64] == b"O" * 64
        assert mixed[64:128] == b"N" * 64
        assert mixed[128:192] == b"O" * 64
