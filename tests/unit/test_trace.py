"""Tests for trace events, the recorder, and text serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._location import UNKNOWN_LOCATION, SourceLocation
from repro.trace.events import EventKind, TraceEvent
from repro.trace.recorder import TraceRecorder
from repro.trace.serialize import (
    format_event,
    format_trace,
    parse_event,
    parse_trace,
)


class TestEvents:
    def test_touches_pm_data(self):
        assert TraceEvent(0, EventKind.STORE, 0, 8).touches_pm_data()
        assert TraceEvent(0, EventKind.TX_ADD, 0, 8).touches_pm_data()
        assert TraceEvent(0, EventKind.ALLOC, 0, 8).touches_pm_data()
        assert not TraceEvent(0, EventKind.LOAD, 0, 8).touches_pm_data()
        assert not TraceEvent(0, EventKind.FENCE).touches_pm_data()

    def test_end(self):
        assert TraceEvent(0, EventKind.STORE, 100, 8).end == 108

    def test_str_renders_fields(self):
        ip = SourceLocation("/a/b.py", 12, "fn")
        text = str(TraceEvent(3, EventKind.STORE, 0x10, 8, "", ip))
        assert "STORE" in text
        assert "b.py:12" in text


class TestRecorder:
    def test_sequencing(self):
        rec = TraceRecorder()
        e0 = rec.append(EventKind.STORE, 0, 8)
        e1 = rec.append(EventKind.FENCE)
        assert (e0.seq, e1.seq) == (0, 1)
        assert len(rec) == 2

    def test_prefix(self):
        rec = TraceRecorder()
        for _ in range(5):
            rec.append(EventKind.FENCE)
        assert len(rec.prefix(3)) == 3

    def test_count_and_failure_points(self):
        rec = TraceRecorder()
        rec.append(EventKind.STORE, 0, 8)
        rec.append(EventKind.FAILURE_POINT, info="0")
        rec.append(EventKind.FAILURE_POINT, info="1")
        assert rec.count(EventKind.FAILURE_POINT) == 2
        assert [e.info for e in rec.failure_points()] == ["0", "1"]

    def test_default_ip_is_unknown(self):
        rec = TraceRecorder()
        event = rec.append(EventKind.FENCE)
        assert event.ip is UNKNOWN_LOCATION


class TestSerialization:
    def test_roundtrip_simple(self):
        event = TraceEvent(
            7, EventKind.STORE, 0x10000000010, 8, "",
            SourceLocation("/src/x.py", 42, "update"),
        )
        parsed = parse_event(format_event(event))
        assert parsed == event

    def test_roundtrip_with_info(self):
        event = TraceEvent(0, EventKind.FLUSH, 0x40, 64, "CLWB")
        parsed = parse_event(format_event(event))
        assert parsed.info == "CLWB"
        assert parsed.ip == UNKNOWN_LOCATION

    def test_trace_roundtrip_and_comments(self):
        rec = TraceRecorder()
        rec.append(EventKind.STORE, 0x100, 16)
        rec.append(EventKind.FENCE, info="SFENCE")
        text = "# a comment\n\n" + format_trace(rec.events)
        parsed = parse_trace(text)
        assert parsed == rec.events

    def test_malformed_lines_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            parse_event("1 STORE 0x10")
        with pytest.raises(ValueError):
            parse_event("1 STORE 0x10 8 - no-location-separator")


_locations = st.builds(
    SourceLocation,
    filename=st.text(
        alphabet=st.characters(
            whitelist_categories=("L", "N"), whitelist_characters="/._-"
        ),
        min_size=1, max_size=20,
    ),
    lineno=st.integers(0, 10**6),
    function=st.text(
        alphabet=st.characters(whitelist_categories=("L", "N")),
        min_size=1, max_size=15,
    ),
)

_events = st.builds(
    TraceEvent,
    seq=st.integers(0, 10**9),
    kind=st.sampled_from(list(EventKind)),
    addr=st.integers(0, 1 << 48),
    size=st.integers(0, 1 << 20),
    info=st.text(
        alphabet=st.characters(whitelist_categories=("L", "N")),
        max_size=12,
    ),
    ip=_locations,
)


@settings(max_examples=200, deadline=None)
@given(_events)
def test_serialization_roundtrip_property(event):
    assert parse_event(format_event(event)) == event
