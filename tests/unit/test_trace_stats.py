"""Trace statistics on a real recorded trace (hashmap_tx).

Complements the synthetic-event tests in test_stats_and_image.py:
here the trace comes from an actual frontend run, and the
metrics-registry backing of ``analyze_trace`` is exercised.
"""

import pytest

from repro.core import DetectorConfig
from repro.core.frontend import Frontend
from repro.obs.metrics import MetricsRegistry
from repro.trace.events import EventKind
from repro.trace.stats import analyze_trace
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def hashmap_tx_trace():
    workload = ALL_WORKLOADS["hashmap_tx"](init_size=2, test_size=2)
    config = DetectorConfig(inject_failures=False)
    result = Frontend(config).run(workload)
    return result.pre_recorder


@pytest.fixture(scope="module")
def stats(hashmap_tx_trace):
    return analyze_trace(hashmap_tx_trace)


class TestRecordedTrace:
    def test_event_total_matches_recorder(self, hashmap_tx_trace,
                                          stats):
        assert stats.events == len(hashmap_tx_trace)
        assert stats.events > 0

    def test_per_kind_counts_match_recorder(self, hashmap_tx_trace,
                                            stats):
        for kind in (EventKind.STORE, EventKind.LOAD,
                     EventKind.FLUSH, EventKind.FENCE,
                     EventKind.TX_BEGIN, EventKind.TX_ADD,
                     EventKind.TX_COMMIT):
            assert stats.by_kind.get(kind.value, 0) == \
                hashmap_tx_trace.count(kind), kind
        # by_kind only lists kinds that occurred
        assert all(count > 0 for count in stats.by_kind.values())
        assert sum(stats.by_kind.values()) == stats.events

    def test_transactional_workload_shape(self, stats):
        # hashmap_tx inserts via pmemobj transactions: it must log
        # ranges, flush, and fence.
        assert stats.transactions > 0
        assert stats.tx_added_bytes > 0
        assert stats.flushes > 0
        assert stats.fences > 0
        assert stats.stored_bytes >= stats.footprint_bytes > 0
        assert stats.threads == 1
        # No failure injection: no FAILURE_POINT markers, but the
        # library still emits ordering hints.
        assert stats.failure_points == 0
        assert stats.ordering_hints > 0

    def test_format_lists_every_kind(self, stats):
        text = stats.format()
        assert f"events:           {stats.events}" in text
        assert "per kind:" in text
        for kind_name, count in stats.by_kind.items():
            assert kind_name in text
            assert str(count) in text
        assert f"flushes/fences:   {stats.flushes}/{stats.fences}" \
            in text


class TestRegistryBacking:
    def test_registry_attached(self, stats):
        registry = stats.registry
        assert registry is not None
        assert registry.value("trace.events_total") == stats.events
        assert registry.value("trace.stored_bytes") == \
            stats.stored_bytes
        assert registry.value("trace.footprint_bytes") == \
            stats.footprint_bytes
        assert registry.value("trace.kind.STORE") == \
            stats.by_kind["STORE"]

    def test_caller_supplied_registry_accumulates(
            self, hashmap_tx_trace):
        registry = MetricsRegistry()
        first = analyze_trace(hashmap_tx_trace, registry=registry)
        second = analyze_trace(hashmap_tx_trace, registry=registry)
        assert second.registry is registry
        # Counters accumulate across traces; the TraceStats view
        # reflects the running totals.
        assert registry.value("trace.events_total") == \
            2 * first.events
        assert second.events == 2 * first.events

    def test_registry_exports_ndjson_records(self, stats):
        records = list(stats.registry.to_records())
        assert all(record["type"] == "metric" for record in records)
        names = {record["name"] for record in records}
        assert "trace.events_total" in names
        assert "trace.threads" in names
