"""Tests for undo-log transactions and recovery."""

import pytest

from repro.errors import AbortedTransactionError, TransactionError
from repro.pmdk import I64, ObjectPool, Struct, U64
from repro.pmdk.pmemobj.tx import LOG_DATA_CAPACITY, LogEntry, Transaction
from repro.trace.events import EventKind


class TxRoot(Struct):
    a = I64()
    b = I64()
    counter = U64()


@pytest.fixture
def tx_pool(memory):
    pool = ObjectPool.create(memory, "txp", "tx-layout", root_cls=TxRoot)
    root = pool.root
    root.a = 1
    root.b = 2
    root.counter = 0
    pool.persist(root.address, TxRoot.SIZE)
    return pool


class TestCommit:
    def test_committed_updates_visible_and_persisted(self, memory,
                                                     tx_pool):
        root = tx_pool.root
        with tx_pool.transaction() as tx:
            tx.add_field(root, "a")
            root.a = 100
        assert root.a == 100
        assert memory.is_persisted(root.field_addr("a"), 8)

    def test_trace_has_tx_markers(self, memory, tx_pool):
        root = tx_pool.root
        with tx_pool.transaction() as tx:
            tx.add_field(root, "a")
            root.a = 5
        kinds = [e.kind for e in memory.recorder.events]
        assert EventKind.TX_BEGIN in kinds
        assert EventKind.TX_ADD in kinds
        assert EventKind.TX_COMMIT in kinds
        assert EventKind.TX_ABORT not in kinds

    def test_log_retired_after_commit(self, memory, tx_pool):
        root = tx_pool.root
        with tx_pool.transaction() as tx:
            tx.add_field(root, "a")
            root.a = 100
        entry = LogEntry(memory, tx_pool.log_base)
        assert entry.valid == 0

    def test_nested_transactions_flatten(self, memory, tx_pool):
        root = tx_pool.root
        with tx_pool.transaction() as outer:
            outer.add_field(root, "a")
            root.a = 10
            with tx_pool.transaction() as inner:
                assert inner is outer
                inner.add_field(root, "b")
                root.b = 20
            # Still uncommitted here: one flat transaction.
            assert root.a == 10
        assert (root.a, root.b) == (10, 20)

    def test_large_range_spans_multiple_slots(self, memory, tx_pool):
        size = LOG_DATA_CAPACITY * 2 + 10
        address = tx_pool.alloc(size)
        memory.store(address, b"z" * size)
        with tx_pool.transaction() as tx:
            tx.add(address, size)
            memory.store(address, b"q" * size)
        assert memory.load(address, size) == b"q" * size


class TestAbortAndRecovery:
    def test_exception_rolls_back(self, memory, tx_pool):
        root = tx_pool.root
        with pytest.raises(RuntimeError):
            with tx_pool.transaction() as tx:
                tx.add_field(root, "a")
                root.a = 999
                raise RuntimeError("boom")
        assert root.a == 1  # restored

    def test_explicit_abort(self, memory, tx_pool):
        root = tx_pool.root
        with pytest.raises(AbortedTransactionError):
            with tx_pool.transaction() as tx:
                tx.add_field(root, "a")
                root.a = 999
                tx.abort()
        assert root.a == 1

    def test_abort_emits_marker(self, memory, tx_pool):
        root = tx_pool.root
        with pytest.raises(AbortedTransactionError):
            with tx_pool.transaction() as tx:
                tx.add_field(root, "a")
                root.a = 999
                tx.abort()
        kinds = [e.kind for e in memory.recorder.events]
        assert EventKind.TX_ABORT in kinds
        assert EventKind.TX_COMMIT not in kinds

    def test_unadded_writes_survive_rollback(self, memory, tx_pool):
        root = tx_pool.root
        with pytest.raises(RuntimeError):
            with tx_pool.transaction() as tx:
                tx.add_field(root, "a")
                root.a = 999
                root.b = 888  # not added: rollback cannot restore it
                raise RuntimeError("boom")
        assert root.a == 1
        assert root.b == 888

    def test_open_recovers_interrupted_transaction(self, memory,
                                                   tx_pool):
        root = tx_pool.root
        # Simulate a failure mid-transaction: log written, in-place
        # update applied, but commit never runs.
        tx = Transaction(tx_pool)
        tx.__enter__()
        tx.add_field(root, "a")
        root.a = 777
        # "Crash": abandon the transaction object without exiting, then
        # reopen the pool, which must roll back from the undo log.
        tx_pool.active_tx = None
        reopened = ObjectPool.open(memory, "txp", "tx-layout", TxRoot)
        assert reopened.root.a == 1

    def test_add_outside_transaction_rejected(self, tx_pool):
        tx = Transaction(tx_pool)
        with pytest.raises(TransactionError):
            tx.add(tx_pool.root.address, 8)

    def test_log_exhaustion_detected(self, memory):
        pool = ObjectPool.create(
            memory, "tiny", "t", root_cls=TxRoot, log_size=512
        )
        root = pool.root
        with pytest.raises(TransactionError):
            with pool.transaction() as tx:
                for _ in range(10):
                    tx.add(root.address, TxRoot.SIZE)


class TestTxAllocFree:
    def test_tx_alloc_survives_commit(self, memory, tx_pool):
        with tx_pool.transaction() as tx:
            obj = tx.alloc(TxRoot)
            tx.add_struct(obj)
            obj.a = 7
        assert obj.a == 7

    def test_tx_alloc_released_on_abort(self, memory, tx_pool):
        with pytest.raises(RuntimeError):
            with tx_pool.transaction() as tx:
                obj = tx.alloc(TxRoot)
                raise RuntimeError("boom")
        # The block is back on the free list: the next allocation of
        # the same size reuses it.
        again = tx_pool.alloc(TxRoot)
        assert again.address == obj.address

    def test_tx_free_deferred_to_commit(self, memory, tx_pool):
        victim = tx_pool.alloc(TxRoot)
        with tx_pool.transaction() as tx:
            tx.free(victim)
            # Not yet freed: an allocation inside the tx cannot reuse
            # the block.
            other = tx.alloc(TxRoot)
            assert other.address != victim.address
        reused = tx_pool.alloc(TxRoot)
        assert reused.address == victim.address

    def test_tx_free_skipped_on_abort(self, memory, tx_pool):
        victim = tx_pool.alloc(TxRoot)
        with pytest.raises(RuntimeError):
            with tx_pool.transaction() as tx:
                tx.free(victim)
                raise RuntimeError("boom")
        # The abort kept the object alive: fresh allocations do not
        # reuse its block.
        fresh = tx_pool.alloc(TxRoot)
        assert fresh.address != victim.address

    def test_tx_alloc_free_outside_tx_rejected(self, tx_pool):
        tx = Transaction(tx_pool)
        with pytest.raises(TransactionError):
            tx.alloc(64)
        with pytest.raises(TransactionError):
            tx.free(0x1000)


class TestAddHelpers:
    def test_add_struct_and_field(self, memory, tx_pool):
        root = tx_pool.root
        with tx_pool.transaction() as tx:
            tx.add_struct(root)
            root.a = 7
            root.b = 8
        assert (root.a, root.b) == (7, 8)
        adds = [
            e for e in memory.recorder.events
            if e.kind is EventKind.TX_ADD
        ]
        assert adds[-1].size == TxRoot.SIZE

    def test_added_ranges_property(self, tx_pool):
        root = tx_pool.root
        with tx_pool.transaction() as tx:
            tx.add_field(root, "a")
            assert tx.added_ranges == ((root.field_addr("a"), 8),)
            root.a = 3
