"""Tests for the extended application commands (Redis INCR/APPEND,
Memcached CAS/TOUCH/eviction) and their crash consistency."""

import pytest

from repro.core import DetectorConfig, XFDetector
from repro.pm.memory import PersistentMemory
from repro.pmdk import ObjectPool
from repro.trace.recorder import TraceRecorder
from repro.workloads.base import Workload
from repro.workloads.pmcache import CacheRoot, PMCache
from repro.workloads.pmcache import LAYOUT as MC_LAYOUT
from repro.workloads.pmkv import KVRoot, PMKVServer
from repro.workloads.pmkv import LAYOUT as KV_LAYOUT


def fresh_memory():
    return PersistentMemory(TraceRecorder(), capture_ips=False)


def make_server():
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "pmkv", KV_LAYOUT, root_cls=KVRoot)
    root = pool.root
    root.initialized = 0
    root.num_dict_entries = 0
    pool.persist(root.address, KVRoot.SIZE)
    server = PMKVServer(pool)
    server.init_persistent_memory(nbuckets=8)
    return server


def make_cache():
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "pmcache", MC_LAYOUT,
                             root_cls=CacheRoot)
    return PMCache(pool).create(nbuckets=8)


class TestRedisIncrAppend:
    def test_incr_creates_and_counts(self):
        server = make_server()
        assert server.incr("hits") == 1
        assert server.incr("hits") == 2
        assert server.incr("hits", delta=5) == 7
        assert server.get("hits") == b"7"

    def test_incr_negative_delta(self):
        server = make_server()
        server.set("n", "10")
        assert server.incr("n", delta=-3) == 7

    def test_incr_non_integer_rejected(self):
        server = make_server()
        server.set("s", "hello")
        with pytest.raises(ValueError):
            server.incr("s")

    def test_append(self):
        server = make_server()
        assert server.append("log", "a") == 1
        assert server.append("log", "bc") == 3
        assert server.get("log") == b"abc"

    def test_append_overflow_rejected(self):
        server = make_server()
        server.set("big", "x" * 60)
        with pytest.raises(ValueError):
            server.append("big", "y" * 10)


class TestMemcachedCas:
    def test_gets_returns_stamp(self):
        cache = make_cache()
        cache.set("k", "v1")
        value, stamp = cache.gets("k")
        assert value == b"v1"
        assert stamp > 0

    def test_cas_success_and_conflict(self):
        cache = make_cache()
        cache.set("k", "v1")
        _value, stamp = cache.gets("k")
        assert cache.cas("k", "v2", stamp) == "STORED"
        # The old stamp is now stale.
        assert cache.cas("k", "v3", stamp) == "EXISTS"
        assert cache.get("k") == b"v2"

    def test_cas_missing_key(self):
        cache = make_cache()
        assert cache.cas("ghost", "v", 1) == "NOT_FOUND"

    def test_cas_stamps_are_unique(self):
        cache = make_cache()
        stamps = set()
        for i in range(5):
            cache.set(f"k{i}", "v")
            stamps.add(cache.gets(f"k{i}")[1])
        assert len(stamps) == 5

    def test_touch_and_eviction_order(self):
        cache = make_cache()
        for i in range(4):
            cache.set(f"k{i}", "v")
        assert cache.touch("k0") is True
        assert cache.touch("ghost") is False
        evicted = cache.evict_lru(keep=2)
        # k0 was touched last; k1/k2 are the LRU victims.
        assert evicted == [b"k1", b"k2"]
        assert cache.get("k0") == b"v"
        assert cache.stats()["item_count"] == 2


class _IncrWorkload(Workload):
    """INCR under failure injection: a correct read-modify-write."""

    name = "pmkv-incr"

    def setup(self, ctx):
        pool = ObjectPool.create(ctx.memory, "pmkv", KV_LAYOUT,
                                 root_cls=KVRoot)
        root = pool.root
        root.initialized = 0
        root.num_dict_entries = 0
        pool.persist(root.address, KVRoot.SIZE)
        server = PMKVServer(pool)
        server.init_persistent_memory(nbuckets=4)
        server.set("counter", "0")

    def pre_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "pmkv", KV_LAYOUT, KVRoot)
        server = PMKVServer(pool)
        for _ in range(3):
            server.incr("counter")

    def post_failure(self, ctx):
        pool = ObjectPool.open(ctx.memory, "pmkv", KV_LAYOUT, KVRoot)
        server = PMKVServer(pool)
        value = int(server.get("counter"))
        assert 0 <= value <= 3


class TestCrashConsistencyOfExtensions:
    def test_incr_is_failure_atomic(self):
        report = XFDetector(DetectorConfig()).run(_IncrWorkload())
        assert report.bugs == [], report.format()
        assert report.stats.failure_points > 0
