"""Functional tests for the hashmaps, the KV server, the cache, and the
Section 2 example structures (no failure injection)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pm.memory import PersistentMemory
from repro.pmdk import ObjectPool, pmem
from repro.trace.recorder import TraceRecorder
from repro.workloads.array_backup import (
    ARRAY_LEN,
    BackupArray,
    BackupRoot,
    LAYOUT as AB_LAYOUT,
)
from repro.workloads.hashmap_atomic import (
    AtomicRoot,
    HashmapAtomic,
    LAYOUT as HA_LAYOUT,
)
from repro.workloads.hashmap_tx import (
    HashmapTX,
    LAYOUT as HT_LAYOUT,
    TxRoot,
)
from repro.workloads.linkedlist import (
    LAYOUT as LL_LAYOUT,
    ListRoot,
    PersistentList,
)
from repro.workloads.pmcache import (
    CacheRoot,
    LAYOUT as MC_LAYOUT,
    PMCache,
)
from repro.workloads.pmkv import KVRoot, LAYOUT as KV_LAYOUT, PMKVServer


def fresh_memory():
    return PersistentMemory(TraceRecorder(), capture_ips=False)


def make_hashmap_tx(nbuckets=8):
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "ht", HT_LAYOUT, root_cls=TxRoot)
    return HashmapTX.create(pool, nbuckets)


def make_hashmap_atomic(nbuckets=8):
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "ha", HA_LAYOUT, root_cls=AtomicRoot)
    return HashmapAtomic(pool).create(nbuckets)


@pytest.mark.parametrize(
    "factory", [make_hashmap_tx, make_hashmap_atomic],
    ids=["hashmap_tx", "hashmap_atomic"],
)
class TestHashmaps:
    def test_insert_get(self, factory):
        hm = factory()
        hm.insert(1, 10)
        hm.insert(2, 20)
        assert hm.get(1) == 10
        assert hm.get(2) == 20
        assert hm.get(3) is None
        assert hm.count() == 2

    def test_chaining_with_few_buckets(self, factory):
        hm = factory(nbuckets=2)
        for key in range(20):
            hm.insert(key, key * 3)
        for key in range(20):
            assert hm.get(key) == key * 3
        assert hm.count() == 20

    def test_remove(self, factory):
        hm = factory(nbuckets=2)
        for key in range(6):
            hm.insert(key, key)
        assert hm.remove(3) is True
        assert hm.get(3) is None
        assert hm.count() == 5
        assert hm.remove(3) is False
        assert sorted(k for k, _v in hm.items()) == [0, 1, 2, 4, 5]


class TestHashmapTxSpecific:
    def test_update_goes_through_value_path(self):
        hm = make_hashmap_tx()
        hm.insert(7, 70)
        hm.insert(7, 77)
        assert hm.get(7) == 77
        assert hm.count() == 1

    def test_verify_counts_entries(self):
        hm = make_hashmap_tx()
        for key in range(5):
            hm.insert(key, key)
        seen, stored = hm.verify()
        assert seen == stored == 5


class TestHashmapAtomicSpecific:
    def test_update_in_place(self):
        hm = make_hashmap_atomic()
        hm.insert(7, 70)
        assert hm.update(7, 77) is True
        assert hm.get(7) == 77
        assert hm.update(99, 1) is False

    def test_recover_recounts_when_dirty(self):
        hm = make_hashmap_atomic()
        hm.insert(1, 1)
        hm.insert(2, 2)
        header = hm.header
        # Corrupt the count and mark it dirty, as a failure would.
        header.count = 99
        header.count_dirty = 1
        hm.recover()
        assert hm.count() == 2
        assert header.count_dirty == 0

    def test_recover_trusts_clean_count(self):
        hm = make_hashmap_atomic()
        hm.insert(1, 1)
        hm.recover()
        assert hm.count() == 1


class TestPMKVServer:
    def make_server(self):
        memory = fresh_memory()
        pool = ObjectPool.create(memory, "kv", KV_LAYOUT, root_cls=KVRoot)
        root = pool.root
        root.initialized = 0
        root.num_dict_entries = 0
        pool.persist(root.address, KVRoot.SIZE)
        server = PMKVServer(pool)
        server.init_persistent_memory(nbuckets=8)
        return server

    def test_set_get_delete(self):
        server = self.make_server()
        server.set("alpha", "one")
        server.set("beta", "two")
        assert server.get("alpha") == b"one"
        assert server.get("missing") is None
        assert server.delete("alpha") is True
        assert server.get("alpha") is None
        assert server.delete("alpha") is False
        assert server.info()["num_dict_entries"] == 1

    def test_set_overwrites(self):
        server = self.make_server()
        server.set("k", "v1")
        server.set("k", "v2")
        assert server.get("k") == b"v2"
        assert server.info()["num_dict_entries"] == 1

    def test_keys_sorted(self):
        server = self.make_server()
        for name in ["zz", "aa", "mm"]:
            server.set(name, "x")
        assert server.keys() == [b"aa", b"mm", b"zz"]

    def test_reinit_is_idempotent(self):
        server = self.make_server()
        server.set("k", "v")
        server.init_persistent_memory(nbuckets=8)  # no-op when live
        assert server.get("k") == b"v"

    def test_oversized_values_rejected(self):
        server = self.make_server()
        with pytest.raises(ValueError):
            server.set("k" * 100, "v")
        with pytest.raises(ValueError):
            server.set("k", "")


class TestPMCache:
    def make_cache(self):
        memory = fresh_memory()
        pool = ObjectPool.create(
            memory, "mc", MC_LAYOUT, root_cls=CacheRoot
        )
        return PMCache(pool).create(nbuckets=8)

    def test_set_get_delete(self):
        cache = self.make_cache()
        cache.set("a", "1")
        cache.set("b", "2")
        assert cache.get("a") == b"1"
        assert cache.delete("a") is True
        assert cache.get("a") is None
        assert cache.stats()["item_count"] == 1

    def test_set_replaces_out_of_place(self):
        cache = self.make_cache()
        cache.set("a", "old")
        cache.set("a", "new")
        assert cache.get("a") == b"new"
        assert cache.stats()["item_count"] == 1

    def test_lru_order_tracks_access(self):
        cache = self.make_cache()
        cache.set("a", "1")
        cache.set("b", "2")
        cache.get("a")
        assert cache.lru == [b"b", b"a"]

    def test_warm_restart_rebuilds_lru_and_count(self):
        cache = self.make_cache()
        cache.set("a", "1")
        cache.set("b", "2")
        header = cache.header
        header.item_count = 77
        header.count_dirty = 1
        restarted = PMCache(cache.pool)
        restarted.warm_restart()
        assert restarted.stats()["item_count"] == 2
        assert sorted(restarted.lru) == [b"a", b"b"]


class TestLinkedList:
    def make_list(self):
        memory = fresh_memory()
        pool = ObjectPool.create(memory, "ll", LL_LAYOUT, root_cls=ListRoot)
        root = pool.root
        root.head = 0
        root.length = 0
        pmem.persist(memory, root.address, ListRoot.SIZE)
        return PersistentList(pool)

    def test_append_pop(self):
        plist = self.make_list()
        plist.append(1)
        plist.append(2)
        assert plist.items() == [2, 1]  # head insertion
        assert plist.length() == 2
        plist.pop()
        assert plist.items() == [1]
        assert plist.length() == 1

    def test_pop_empty_is_noop(self):
        plist = self.make_list()
        plist.pop()
        assert plist.length() == 0

    def test_recover_alt_fixes_length(self):
        plist = self.make_list()
        plist.append(1)
        plist.append(2)
        plist.root.length = 99  # simulate torn length
        plist.recover_alt()
        assert plist.length() == 2


class TestBackupArray:
    def make_array(self):
        memory = fresh_memory()
        pool = ObjectPool.create(
            memory, "ab", AB_LAYOUT, root_cls=BackupRoot
        )
        root = pool.root
        for i in range(ARRAY_LEN):
            root.arr[i] = i
        root.valid = 0
        pmem.persist(memory, root.address, BackupRoot.SIZE)
        return BackupArray(pool)

    def test_update_and_read(self):
        backup = self.make_array()
        backup.update(3, 999)
        values = backup.read_all()
        assert values[3] == 999
        assert backup.root.valid == 0

    def test_recover_rolls_back_valid_backup(self):
        backup = self.make_array()
        root = backup.root
        root.backup_idx = 2
        root.backup_val = 2
        root.arr[2] = 777  # torn in-place update
        root.valid = 1
        backup.recover()
        assert backup.read_all()[2] == 2
        assert root.valid == 0

    def test_recover_skips_invalid_backup(self):
        backup = self.make_array()
        backup.root.arr[2] = 777
        backup.recover()
        assert backup.read_all()[2] == 777


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["set", "delete"]),
        st.integers(0, 15),
        st.integers(0, 10**4),
    ),
    max_size=50,
))
def test_pmkv_matches_dict_model(ops):
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "kv", KV_LAYOUT, root_cls=KVRoot)
    root = pool.root
    root.initialized = 0
    root.num_dict_entries = 0
    pool.persist(root.address, KVRoot.SIZE)
    server = PMKVServer(pool)
    server.init_persistent_memory(nbuckets=4)
    model = {}
    for op, key_num, value_num in ops:
        key, value = f"k{key_num}", f"v{value_num}"
        if op == "set":
            server.set(key, value)
            model[key] = value
        else:
            assert server.delete(key) == (key in model)
            model.pop(key, None)
    assert server.info()["num_dict_entries"] == len(model)
    for key, value in model.items():
        assert server.get(key) == value.encode()
