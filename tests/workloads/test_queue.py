"""Tests for the persistent ring-buffer queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BugKind, DetectorConfig, XFDetector
from repro.core.frontend import Frontend
from repro.pm.image import CrashImageMode
from repro.pm.memory import PersistentMemory
from repro.pm.pool import PMPool
from repro.pmdk import ObjectPool
from repro.trace.recorder import TraceRecorder
from repro.workloads.queue import (
    LAYOUT,
    PersistentQueue,
    QueueFullError,
    QueueRoot,
    QueueWorkload,
)


def make_queue(capacity=8):
    memory = PersistentMemory(TraceRecorder(), capture_ips=False)
    pool = ObjectPool.create(memory, "queue", LAYOUT, root_cls=QueueRoot)
    return PersistentQueue(pool).create(capacity)


class TestQueueFunctional:
    def test_fifo_order(self):
        queue = make_queue()
        for value in [3, 1, 4]:
            queue.enqueue(value)
        assert queue.peek_all() == [3, 1, 4]
        assert queue.dequeue() == 3
        assert queue.dequeue() == 1
        assert queue.size() == 1

    def test_empty_dequeue(self):
        queue = make_queue()
        assert queue.dequeue() is None

    def test_wraparound(self):
        queue = make_queue(capacity=4)
        for value in range(4):
            queue.enqueue(value)
        for _ in range(3):
            queue.dequeue()
        for value in [10, 11, 12]:  # wraps the ring
            queue.enqueue(value)
        assert queue.peek_all() == [3, 10, 11, 12]

    def test_full_queue_rejected(self):
        queue = make_queue(capacity=2)
        queue.enqueue(1)
        queue.enqueue(2)
        with pytest.raises(QueueFullError):
            queue.enqueue(3)

    def test_negative_values(self):
        queue = make_queue()
        queue.enqueue(-12345)
        assert queue.dequeue() == -12345


class TestQueueDetection:
    def test_correct_queue_clean(self):
        report = XFDetector(DetectorConfig()).run(
            QueueWorkload(init_size=2, test_size=3)
        )
        assert report.bugs == [], report.format()

    @pytest.mark.parametrize("flag,kind", [
        ("tail_before_slot", BugKind.CROSS_FAILURE_RACE),
        ("skip_persist_slot", BugKind.CROSS_FAILURE_RACE),
        ("double_flush_slot", BugKind.PERFORMANCE),
    ])
    def test_faults_detected(self, flag, kind):
        report = XFDetector(DetectorConfig()).run(
            QueueWorkload(faults={flag}, init_size=1, test_size=3)
        )
        assert any(bug.kind is kind for bug in report.bugs)


class TestQueueCrashAtomicity:
    def test_every_failure_point_recovers_a_prefix(self):
        enqueues = 4
        workload = QueueWorkload(init_size=0, test_size=enqueues)
        result = Frontend(DetectorConfig()).run(workload)
        valid = [
            [100 + i for i in range(k)] for k in range(enqueues + 1)
        ]
        for failure_point in result.failure_points:
            image = failure_point.images[0]
            memory = PersistentMemory(
                TraceRecorder("post"), capture_ips=False
            )
            memory.map_pool(PMPool(
                image.pool_name, image.size, image.base,
                data=image.bytes_for(CrashImageMode.PERSISTED_ONLY),
            ))
            pool = ObjectPool.open(memory, "queue", LAYOUT, QueueRoot)
            queue = PersistentQueue(pool)
            assert queue.peek_all() in valid


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(-100, 100)),
        st.tuples(st.just("deq"), st.none()),
    ),
    max_size=40,
))
def test_queue_matches_list_model(ops):
    queue = make_queue(capacity=64)
    model = []
    for op, value in ops:
        if op == "enq":
            if len(model) < 64:
                queue.enqueue(value)
                model.append(value)
        else:
            expected = model.pop(0) if model else None
            assert queue.dequeue() == expected
    assert queue.peek_all() == model
    assert queue.size() == len(model)
