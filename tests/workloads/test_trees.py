"""Functional tests for the tree structures (no failure injection):
they must behave like ordinary maps and keep their invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pm.memory import PersistentMemory
from repro.pmdk import ObjectPool, pmem
from repro.trace.recorder import TraceRecorder
from repro.workloads.btree import BTree, BTreeRoot, LAYOUT as BT_LAYOUT
from repro.workloads.ctree import CTree, CTreeRoot, LAYOUT as CT_LAYOUT
from repro.workloads.rbtree import RBTree, RBRoot, LAYOUT as RB_LAYOUT


def fresh_memory():
    return PersistentMemory(TraceRecorder(), capture_ips=False)


def make_btree():
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "bt", BT_LAYOUT, root_cls=BTreeRoot)
    root = pool.root
    root.root_ptr = 0
    root.count = 0
    pmem.persist(memory, root.address, BTreeRoot.SIZE)
    return BTree(pool)


def make_ctree():
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "ct", CT_LAYOUT, root_cls=CTreeRoot)
    root = pool.root
    root.root_ptr = 0
    root.count = 0
    pmem.persist(memory, root.address, CTreeRoot.SIZE)
    return CTree(pool)


def make_rbtree():
    memory = fresh_memory()
    pool = ObjectPool.create(memory, "rt", RB_LAYOUT, root_cls=RBRoot)
    root = pool.root
    root.root_ptr = 0
    root.count = 0
    pmem.persist(memory, root.address, RBRoot.SIZE)
    return RBTree(pool)


@pytest.mark.parametrize("factory", [make_btree, make_ctree, make_rbtree],
                         ids=["btree", "ctree", "rbtree"])
class TestCommonMapBehaviour:
    def test_empty_lookup(self, factory):
        tree = factory()
        assert tree.get(42) is None
        assert tree.count() == 0
        assert tree.items() == []

    def test_insert_and_get(self, factory):
        tree = factory()
        tree.insert(5, 50)
        tree.insert(3, 30)
        tree.insert(8, 80)
        assert tree.get(5) == 50
        assert tree.get(3) == 30
        assert tree.get(8) == 80
        assert tree.get(99) is None
        assert tree.count() == 3

    def test_update_existing_key(self, factory):
        tree = factory()
        tree.insert(5, 50)
        tree.insert(5, 55)
        assert tree.get(5) == 55
        assert tree.count() == 1

    def test_items_sorted(self, factory):
        tree = factory()
        for key in [9, 1, 7, 3, 5]:
            tree.insert(key, key * 10)
        assert tree.items() == [
            (1, 10), (3, 30), (5, 50), (7, 70), (9, 90)
        ]

    def test_many_ascending_inserts(self, factory):
        tree = factory()
        for key in range(1, 40):
            tree.insert(key, key)
        assert tree.count() == 39
        assert [k for k, _v in tree.items()] == list(range(1, 40))
        tree.check()


class TestBTreeSpecific:
    def test_split_produces_internal_root(self):
        tree = make_btree()
        for key in range(1, 6):
            tree.insert(key, key)
        from repro.workloads.btree import BTreeNode

        root_node = BTreeNode(tree.memory, tree.root.root_ptr)
        assert root_node.is_leaf == 0
        tree.check()

    def test_remove_from_leaf(self):
        tree = make_btree()
        for key in [2, 4, 6]:
            tree.insert(key, key)
        assert tree.remove(4) is True
        assert tree.get(4) is None
        assert tree.count() == 2
        assert tree.remove(99) is False

    def test_remove_from_empty(self):
        tree = make_btree()
        assert tree.remove(1) is False


class TestCTreeSpecific:
    def test_crit_bit_invariant(self):
        tree = make_ctree()
        for key in [0b1000, 0b1001, 0b0100, 0b1100, 0b0001]:
            tree.insert(key, key)
        tree.check()

    def test_remove(self):
        tree = make_ctree()
        for key in [1, 2, 3, 4]:
            tree.insert(key, key)
        assert tree.remove(2) is True
        assert tree.get(2) is None
        assert tree.get(3) == 3
        assert tree.count() == 3
        assert tree.remove(2) is False
        tree.check()

    def test_remove_last_element(self):
        tree = make_ctree()
        tree.insert(7, 70)
        assert tree.remove(7) is True
        assert tree.items() == []
        assert tree.root.root_ptr == 0


class TestRBTreeSpecific:
    def test_invariants_random_order(self):
        tree = make_rbtree()
        for key in [13, 8, 17, 1, 11, 15, 25, 6, 22, 27]:
            tree.insert(key, key)
        tree.check()

    def test_audit_visits_all(self):
        tree = make_rbtree()
        for key in range(10):
            tree.insert(key, key)
        assert tree.audit() == 10


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 200), st.integers(0, 10**6)), max_size=60,
))
@pytest.mark.parametrize("factory", [make_btree, make_ctree, make_rbtree],
                         ids=["btree", "ctree", "rbtree"])
def test_trees_match_dict_model(factory, pairs):
    tree = factory()
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    assert tree.items() == sorted(model.items())
    assert tree.count() == len(model)
    for key in list(model)[:10]:
        assert tree.get(key) == model[key]
    tree.check()
